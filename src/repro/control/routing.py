"""Central routing controller (Sec 5's "rudimentary algorithm").

The controller computes, for a requested end-to-end fidelity:

* the path (shortest path — all links/nodes are assumed identical, as in
  the paper's evaluation),
* the **per-link minimum fidelity**, found by binary search over the exact
  worst-case composition: every link pair is assumed to sit in memory for
  one full cutoff window before being swapped, and the L−1 noisy swaps are
  composed with the density-matrix engine's outcome-averaged swap map,
* the **cutoff time**, per policy:

  - ``"loss"`` (the paper's default): the time for a link pair to lose
    ~1.5 % of its initial fidelity,
  - ``"short"``: the time by which a link has 0.85 probability of having
    generated a pair (Sec 5.1's "shorter cutoff"),
  - an explicit number (ns), or ``None`` to disable the mechanism,

* the link-pair rate (LPR) each link can sustain at that fidelity and the
  resulting end-to-end rate (EER) estimate used for policing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import networkx as nx
import numpy as np

from ..hardware.heralded import SingleClickModel
from ..netsim.units import S
from ..quantum.bell import BellIndex
from ..quantum.channels import decoherence_kraus
from ..quantum.fidelity import bell_fidelity
from ..quantum.gates import PAULI_FRAME
from ..quantum.operations import NoisyOpParams, averaged_swap_dm
from ..core.circuit import RoutingEntry

CutoffPolicy = Union[str, float, None]

#: Fraction of initial fidelity lost at the "loss" cutoff (Sec 5).
LOSS_CUTOFF_FRACTION = 0.015
#: Generation-probability quantile of the "short" cutoff (Sec 5.1).
SHORT_CUTOFF_QUANTILE = 0.85


class RouteError(Exception):
    """No path can satisfy the requested end-to-end fidelity."""


@dataclass
class RouteComputation:
    """Everything the signalling protocol needs to install a circuit."""

    path: list[str]
    link_names: list[str]
    link_fidelity: float
    cutoff: Optional[float]
    max_lpr: float
    eer: float
    estimated_fidelity: float
    target_fidelity: float

    @property
    def num_links(self) -> int:
        return len(self.link_names)


def _canonical_link_dm(model: SingleClickModel, link_fidelity: float) -> np.ndarray:
    """Produced link state, rotated into the Φ+ frame.

    The heralded state is Ψ±; lazy tracking folds the frame into the
    delivered Bell index, so budgeting in the canonical frame is exact.
    """
    alpha = model.alpha_for_fidelity(link_fidelity)
    dm = model.produced_dm(alpha, BellIndex.PSI_PLUS)
    pauli = np.kron(np.eye(2, dtype=complex), PAULI_FRAME[1])  # X: Ψ+ → Φ+
    return pauli.conj().T @ dm @ pauli


def _age_pair(dm: np.ndarray, elapsed: float, t1: float, t2: float) -> np.ndarray:
    """Apply memory decoherence to both qubits of a pair state."""
    if elapsed <= 0:
        return dm
    identity = np.eye(2, dtype=complex)
    aged = np.zeros_like(dm)
    for op_a in decoherence_kraus(elapsed, t1, t2):
        big = np.kron(op_a, identity)
        aged += big @ dm @ big.conj().T
    result = np.zeros_like(dm)
    for op_b in decoherence_kraus(elapsed, t1, t2):
        big = np.kron(identity, op_b)
        result += big @ aged @ big.conj().T
    return result


class CentralController:
    """Centralised routing with the worst-case fidelity budget."""

    def __init__(self, graph: nx.Graph, links: dict, memory_t1: float,
                 memory_t2: float, ops: NoisyOpParams):
        """``links`` maps ``frozenset({u, v})`` → :class:`~repro.linklayer.egp.Link`."""
        self.graph = graph
        self.links = links
        self.memory_t1 = memory_t1
        self.memory_t2 = memory_t2
        self.ops = ops

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def compute_route(self, head: str, tail: str, target_fidelity: float,
                      cutoff_policy: CutoffPolicy = "loss") -> RouteComputation:
        """Compute path, link fidelities, cutoff, LPR and EER."""
        if not 0.5 <= target_fidelity < 1.0:
            raise RouteError(f"target fidelity {target_fidelity} must be in [0.5, 1)")
        try:
            path = nx.shortest_path(self.graph, head, tail)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RouteError(f"no path from {head} to {tail}") from exc
        link_objects = [self._link(path[i], path[i + 1]) for i in range(len(path) - 1)]
        num_links = len(link_objects)
        model = link_objects[0].model  # identical links (Sec 5 assumption)

        ceiling = self._fidelity_ceiling(model)
        if ceiling < target_fidelity:
            raise RouteError(
                f"links cannot produce fidelity {target_fidelity:.3f} "
                f"(ceiling ≈ {ceiling:.3f})")

        # Fixed-point iteration between the cutoff window and the link
        # fidelity (each depends on the other through the decoherence
        # budget); converges in a couple of rounds.
        link_fidelity = min(ceiling, max(target_fidelity, 0.9))
        cutoff = self._cutoff_for(model, link_fidelity, cutoff_policy)
        for _ in range(3):
            link_fidelity = self._solve_link_fidelity(
                model, num_links, target_fidelity, cutoff, ceiling)
            cutoff = self._cutoff_for(model, link_fidelity, cutoff_policy)

        estimated = self._worst_case_fidelity(model, link_fidelity, num_links,
                                              cutoff if cutoff else 0.0)
        max_lpr = min(link.max_lpr(link_fidelity) for link in link_objects)
        eer = self._estimate_eer(model, link_fidelity, cutoff, max_lpr)
        return RouteComputation(
            path=path,
            link_names=[link.name for link in link_objects],
            link_fidelity=link_fidelity,
            cutoff=cutoff,
            max_lpr=max_lpr,
            eer=eer,
            estimated_fidelity=estimated,
            target_fidelity=target_fidelity,
        )

    def build_entries(self, circuit_id: str, route: RouteComputation,
                      max_eer: Optional[float] = None) -> list[RoutingEntry]:
        """Materialise the per-node routing table rows for a route."""
        label = f"label:{circuit_id}"
        eer = max_eer if max_eer is not None else route.eer
        entries = []
        path = route.path
        for index, node in enumerate(path):
            upstream = path[index - 1] if index > 0 else None
            downstream = path[index + 1] if index < len(path) - 1 else None
            entries.append(RoutingEntry(
                circuit_id=circuit_id,
                node=node,
                upstream_node=upstream,
                downstream_node=downstream,
                upstream_link=route.link_names[index - 1] if upstream else None,
                downstream_link=route.link_names[index] if downstream else None,
                upstream_link_label=label if upstream else None,
                downstream_link_label=label if downstream else None,
                downstream_min_fidelity=route.link_fidelity if downstream else None,
                downstream_max_lpr=route.max_lpr if downstream else None,
                circuit_max_eer=eer,
                cutoff=route.cutoff,
                estimated_fidelity=route.estimated_fidelity,
            ))
        return entries

    # ------------------------------------------------------------------
    # Budget internals
    # ------------------------------------------------------------------

    def _worst_case_fidelity(self, model: SingleClickModel, link_fidelity: float,
                             num_links: int, cutoff: float) -> float:
        """Worst-case end-to-end fidelity: every pair aged one full cutoff
        window, then L−1 noisy swaps (the Sec 5 budget)."""
        aged = _age_pair(_canonical_link_dm(model, link_fidelity), cutoff,
                         self.memory_t1, self.memory_t2)
        rho = aged
        for _ in range(num_links - 1):
            rho = averaged_swap_dm(rho, aged, self.ops)
        return bell_fidelity(rho, 0)

    def _solve_link_fidelity(self, model: SingleClickModel, num_links: int,
                             target: float, cutoff: Optional[float],
                             ceiling: float) -> float:
        window = cutoff if cutoff else 0.0
        if self._worst_case_fidelity(model, ceiling, num_links, window) < target:
            raise RouteError(
                f"path of {num_links} links cannot meet fidelity {target:.3f} "
                f"even at the link ceiling {ceiling:.3f}")
        low, high = target, ceiling
        for _ in range(40):
            mid = (low + high) / 2
            if self._worst_case_fidelity(model, mid, num_links, window) >= target:
                high = mid
            else:
                low = mid
        return high

    def _cutoff_for(self, model: SingleClickModel, link_fidelity: float,
                    policy: CutoffPolicy) -> Optional[float]:
        if policy is None:
            return None
        if isinstance(policy, (int, float)):
            if policy <= 0:
                raise RouteError("explicit cutoff must be positive")
            return float(policy)
        if policy == "short":
            return model.time_quantile(model.alpha_for_fidelity(link_fidelity),
                                       SHORT_CUTOFF_QUANTILE)
        if policy == "loss":
            return self._loss_cutoff(model, link_fidelity)
        raise RouteError(f"unknown cutoff policy {policy!r}")

    def _loss_cutoff(self, model: SingleClickModel, link_fidelity: float) -> float:
        """Time for a link pair to lose LOSS_CUTOFF_FRACTION of its fidelity."""
        dm = _canonical_link_dm(model, link_fidelity)
        initial = bell_fidelity(dm, 0)
        target = initial * (1.0 - LOSS_CUTOFF_FRACTION)
        low, high = 0.0, 60.0 * S
        while bell_fidelity(_age_pair(dm, high, self.memory_t1, self.memory_t2),
                            0) > target:
            high *= 4.0
            if high > 1e15:  # pragma: no cover - essentially noiseless memory
                return high
        for _ in range(60):
            mid = (low + high) / 2
            aged = _age_pair(dm, mid, self.memory_t1, self.memory_t2)
            if bell_fidelity(aged, 0) > target:
                low = mid
            else:
                high = mid
        return (low + high) / 2

    def _estimate_eer(self, model: SingleClickModel, link_fidelity: float,
                      cutoff: Optional[float], max_lpr: float) -> float:
        """EER estimate: the bottleneck LPR times the probability that the
        matching pair arrives within the cutoff window."""
        if cutoff is None:
            return max_lpr
        alpha = model.alpha_for_fidelity(link_fidelity)
        p = model.success_probability(alpha)
        attempts_in_window = max(1.0, cutoff / model.cycle_time)
        p_match = 1.0 - (1.0 - p) ** attempts_in_window
        return max_lpr * p_match

    def _fidelity_ceiling(self, model: SingleClickModel) -> float:
        grid = np.geomspace(1e-3, 0.5, 200)
        return float(max(model.fidelity(alpha) for alpha in grid)) - 1e-6

    def _link(self, node_a: str, node_b: str):
        try:
            return self.links[frozenset((node_a, node_b))]
        except KeyError:
            raise RouteError(f"no link between {node_a} and {node_b}") from None
