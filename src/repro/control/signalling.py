"""Signalling protocol: virtual circuit installation (Sec 3.3).

Source-routed, RSVP-TE-like: the head-end sends a PATH message hop-by-hop
carrying the routing-table entries computed by the controller; every node
installs its entry into the local QNP and forwards.  The tail answers with
a RESV that travels back; when it reaches the head-end the circuit is ready
and the caller's callback fires.  TEAR removes the state again.

Link-labels (the MPLS-like per-link identifiers of Sec 4.1) are allocated
by the controller: one label per circuit, identical on every link — a valid
special case of the per-link mapping the paper allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.circuit import RoutingEntry
from ..netsim.entity import Entity
from ..netsim.ports import Component, connect
from ..netsim.scheduler import SerialCounter
from ..network.node import QuantumNode, service_protocol

_circuit_ids = SerialCounter()


def allocate_circuit_id(head: str, tail: str) -> str:
    """A globally unique, human-readable virtual-circuit identifier."""
    return f"vc{next(_circuit_ids)}:{head}->{tail}"


@dataclass
class PathMessage:
    """Forward installation message carrying every hop's routing entry."""

    circuit_id: str
    #: Remaining path (first element = this hop's next node).
    entries: list[RoutingEntry]
    index: int = 0


@dataclass
class ResvMessage:
    """Tail-end confirmation travelling back towards the head-end."""

    circuit_id: str
    path: list[str] = field(default_factory=list)
    index: int = 0


@dataclass
class TearMessage:
    """Head-end-initiated circuit removal, relayed hop-by-hop."""

    circuit_id: str
    entries_path: list[str] = field(default_factory=list)
    index: int = 0


class SignallingAgent(Entity, Component):
    """Per-node signalling protocol instance."""

    def __init__(self, node: QuantumNode):
        super().__init__(node.sim, name=f"{node.name}.signalling")
        self.node = node
        connect(self.add_port("node", service_protocol("signalling"),
                              handler=self._on_node_message),
                node.service_port("signalling"))
        self._pending_ready: dict[str, Callable[[str], None]] = {}

    def _on_node_message(self, message) -> None:
        """Port handler: unpack the node's ``(sender, payload)`` tuple."""
        self._on_message(*message)

    # ------------------------------------------------------------------
    # Head-end API
    # ------------------------------------------------------------------

    def establish(self, entries: list[RoutingEntry],
                  on_ready: Optional[Callable[[str], None]] = None) -> str:
        """Install a circuit along the given per-node entries.

        Must be called at the head-end node (``entries[0].node``).  Returns
        the circuit ID immediately; ``on_ready`` fires when the RESV comes
        back.
        """
        if entries[0].node != self.node.name:
            raise ValueError("establish() must run at the head-end node")
        circuit_id = entries[0].circuit_id
        if on_ready is not None:
            self._pending_ready[circuit_id] = on_ready
        self.node.qnp.install_circuit(entries[0])
        message = PathMessage(circuit_id=circuit_id, entries=entries, index=1)
        self.node.send(entries[1].node, "signalling", message)
        return circuit_id

    def teardown(self, circuit_id: str, path: list[str]) -> None:
        """Remove a circuit along its path (head-end initiated)."""
        self.node.qnp.uninstall_circuit(circuit_id)
        if len(path) > 1:
            self.node.send(path[1], "signalling",
                           TearMessage(circuit_id=circuit_id,
                                       entries_path=path, index=1))

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _on_message(self, sender: str, message) -> None:
        if isinstance(message, PathMessage):
            self._on_path(message)
        elif isinstance(message, ResvMessage):
            self._on_resv(message)
        elif isinstance(message, TearMessage):
            self._on_tear(message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected signalling message {message!r}")

    def _on_path(self, message: PathMessage) -> None:
        entry = message.entries[message.index]
        if entry.node != self.node.name:  # pragma: no cover - defensive
            raise RuntimeError(f"{self.name}: PATH for {entry.node} arrived here")
        self.node.qnp.install_circuit(entry)
        if message.index + 1 < len(message.entries):
            message.index += 1
            self.node.send(message.entries[message.index].node, "signalling",
                           message)
        else:
            # Tail-end: confirm back along the path.
            path = [e.node for e in message.entries]
            resv = ResvMessage(circuit_id=message.circuit_id, path=path,
                               index=len(path) - 2)
            self.node.send(path[-2], "signalling", resv)

    def _on_resv(self, message: ResvMessage) -> None:
        if message.index == 0:
            callback = self._pending_ready.pop(message.circuit_id, None)
            if callback is not None:
                callback(message.circuit_id)
            return
        message.index -= 1
        self.node.send(message.path[message.index], "signalling", message)

    def _on_tear(self, message: TearMessage) -> None:
        self.node.qnp.uninstall_circuit(message.circuit_id)
        if message.index + 1 < len(message.entries_path):
            message.index += 1
            self.node.send(message.entries_path[message.index], "signalling",
                           message)
