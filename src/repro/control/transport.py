"""Reliable, in-order transport for control messages (Sec 4.1).

The QNP "requires that all its control messages are transmitted reliably
and in order ... we may simply rely on a transport protocol to provide
these guarantees (e.g. TCP or QUIC)".  The builder's default classical
channels are already reliable and ordered, matching the paper's Appendix B
simplification.  For completeness — and for failure-injection tests — this
module implements a small stop-and-wait ARQ that provides the same
guarantees over a :class:`~repro.netsim.channels.LossyChannel`.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, Callable

from ..netsim.channels import CLASSICAL, ChannelEnd
from ..netsim.entity import Entity
from ..netsim.ports import CallbackComponent, Component, connect
from ..netsim.scheduler import Simulator
from ..netsim.timers import Timer

#: Protocol tag of the in-order delivery port a ReliableEnd exposes.
TRANSPORT = "transport"


class ReliableEnd(Entity, Component):
    """One endpoint of a reliable byte^W message stream (stop-and-wait ARQ).

    Ports: ``raw`` (protocol ``"classical"``) faces the lossy channel;
    ``rx`` (protocol :data:`TRANSPORT`) delivers de-duplicated, in-order
    payloads to whatever the application connects there.
    """

    def __init__(self, sim: Simulator, raw_end: ChannelEnd, rto: float,
                 name: str = ""):
        super().__init__(sim, name or "reliable-end")
        if rto <= 0:
            raise ValueError("retransmission timeout must be positive")
        self.rto = rto
        self._raw_port = self.add_port("raw", CLASSICAL, handler=self._on_raw)
        self._rx_port = self.add_port("rx", TRANSPORT)
        self._send_queue: deque[Any] = deque()
        self._next_send_seq = 0
        self._awaiting_ack = False
        self._expected_seq = 0
        self._retransmit = Timer(sim, self._on_timeout)
        self.retransmissions = 0
        connect(self._raw_port, raw_end.port)

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Deprecated: register the callback for every in-order delivery.

        New code connects a component port to ``self.port("rx")``; this
        shim wraps the callback, replacing any existing connection.
        """
        warnings.warn(
            "ReliableEnd.connect() is deprecated; connect a component port "
            "to ReliableEnd.port('rx') instead",
            DeprecationWarning, stacklevel=2)
        if self._rx_port.connected:
            self._rx_port.disconnect()
        adapter = CallbackComponent(receiver, TRANSPORT,
                                    name=f"{self.name}.receiver")
        connect(self._rx_port, adapter.io)

    def send(self, message: Any) -> None:
        """Queue a message for reliable, in-order transmission."""
        self._send_queue.append(message)
        self._pump()

    # ------------------------------------------------------------------

    def _pump(self) -> None:
        if self._awaiting_ack or not self._send_queue:
            return
        self._awaiting_ack = True
        self._transmit()

    def _transmit(self) -> None:
        payload = self._send_queue[0]
        self._raw_port.tx(("DATA", self._next_send_seq, payload))
        self._retransmit.start(self.rto)

    def _on_timeout(self) -> None:
        if self._awaiting_ack:
            self.retransmissions += 1
            self._transmit()

    def _on_raw(self, frame: Any) -> None:
        kind, seq, payload = frame
        if kind == "ACK":
            if self._awaiting_ack and seq == self._next_send_seq:
                self._retransmit.cancel()
                self._awaiting_ack = False
                self._send_queue.popleft()
                self._next_send_seq += 1
                self._pump()
            return
        # DATA frame: ack everything at or below the expected sequence.
        if seq == self._expected_seq:
            self._expected_seq += 1
            self._raw_port.tx(("ACK", seq, None))
            # tx() raises PortNotConnectedError (a RuntimeError) when no
            # receiver is attached on the rx side.
            self._rx_port.tx(payload)
        elif seq < self._expected_seq:
            # Duplicate (our ACK was lost): re-ack, do not deliver again.
            self._raw_port.tx(("ACK", seq, None))


def make_reliable_pair(sim: Simulator, channel, rto: float
                       ) -> tuple[ReliableEnd, ReliableEnd]:
    """Wrap both ends of a (possibly lossy) channel in ARQ endpoints."""
    end_a = ReliableEnd(sim, channel.ends[0], rto, name="reliable-a")
    end_b = ReliableEnd(sim, channel.ends[1], rto, name="reliable-b")
    return end_a, end_b
