"""Reliable, in-order transport for control messages (Sec 4.1).

The QNP "requires that all its control messages are transmitted reliably
and in order ... we may simply rely on a transport protocol to provide
these guarantees (e.g. TCP or QUIC)".  The builder's default classical
channels are already reliable and ordered, matching the paper's Appendix B
simplification.  For completeness — and for failure-injection tests — this
module implements a small stop-and-wait ARQ that provides the same
guarantees over a :class:`~repro.netsim.channels.LossyChannel`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..netsim.channels import ChannelEnd
from ..netsim.entity import Entity
from ..netsim.scheduler import Simulator
from ..netsim.timers import Timer


class ReliableEnd(Entity):
    """One endpoint of a reliable byte^W message stream (stop-and-wait ARQ)."""

    def __init__(self, sim: Simulator, raw_end: ChannelEnd, rto: float,
                 name: str = ""):
        super().__init__(sim, name or "reliable-end")
        if rto <= 0:
            raise ValueError("retransmission timeout must be positive")
        self.raw = raw_end
        self.rto = rto
        self._receiver: Optional[Callable[[Any], None]] = None
        self._send_queue: deque[Any] = deque()
        self._next_send_seq = 0
        self._awaiting_ack = False
        self._expected_seq = 0
        self._retransmit = Timer(sim, self._on_timeout)
        self.retransmissions = 0
        raw_end.connect(self._on_raw)

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Register the callback invoked for every in-order delivery."""
        self._receiver = receiver

    def send(self, message: Any) -> None:
        """Queue a message for reliable, in-order transmission."""
        self._send_queue.append(message)
        self._pump()

    # ------------------------------------------------------------------

    def _pump(self) -> None:
        if self._awaiting_ack or not self._send_queue:
            return
        self._awaiting_ack = True
        self._transmit()

    def _transmit(self) -> None:
        payload = self._send_queue[0]
        self.raw.send(("DATA", self._next_send_seq, payload))
        self._retransmit.start(self.rto)

    def _on_timeout(self) -> None:
        if self._awaiting_ack:
            self.retransmissions += 1
            self._transmit()

    def _on_raw(self, frame: Any) -> None:
        kind, seq, payload = frame
        if kind == "ACK":
            if self._awaiting_ack and seq == self._next_send_seq:
                self._retransmit.cancel()
                self._awaiting_ack = False
                self._send_queue.popleft()
                self._next_send_seq += 1
                self._pump()
            return
        # DATA frame: ack everything at or below the expected sequence.
        if seq == self._expected_seq:
            self._expected_seq += 1
            self.raw.send(("ACK", seq, None))
            if self._receiver is None:
                raise RuntimeError(f"{self.name}: data arrived with no receiver")
            self._receiver(payload)
        elif seq < self._expected_seq:
            # Duplicate (our ACK was lost): re-ack, do not deliver again.
            self.raw.send(("ACK", seq, None))


def make_reliable_pair(sim: Simulator, channel, rto: float
                       ) -> tuple[ReliableEnd, ReliableEnd]:
    """Wrap both ends of a (possibly lossy) channel in ARQ endpoints."""
    end_a = ReliableEnd(sim, channel.ends[0], rto, name="reliable-a")
    end_b = ReliableEnd(sim, channel.ends[1], rto, name="reliable-b")
    return end_a, end_b
