"""Traffic telemetry: aggregate a workload run into a structured report.

Collected per run:

* **admission** — policer outcomes (accept / queue / reject) and final
  request states, per priority class;
* **circuits** — per-circuit session counts, confirmed pair throughput,
  shaping delay (submission → activation) and measured mean fidelity;
* **links** — utilisation (busy time / elapsed), pairs generated,
  attempts made;
* **device arbiters** — grants and queueing delay (non-zero only on
  serialised near-term hardware);
* **routing & recovery** — the path metric, installed link-share peak,
  link-down events and the RECOVERED/LOST circuit and session tallies
  (see :mod:`repro.traffic.faults`);
* **applications** — per-circuit app outcomes and SLO verdicts plus the
  per-app rollup (see :mod:`repro.apps`), when the engine ran with
  ``apps=``;
* **totals** — end-to-end throughput and the fidelity distribution.

Rendering goes through :func:`repro.analysis.experiments.render_table`
so traffic reports look like every other table in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from ..analysis.experiments import render_table
from ..analysis.stats import mean
from ..apps import HEADLINE_METRICS, summarise_apps
from ..core.requests import DeliveryStatus, RequestStatus
from ..netsim.units import S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.builder import Network
    from ..obs.registry import MetricsRegistry
    from .workload import SessionRecord, TrafficCircuit


@dataclass(frozen=True)
class RetiredSummary:
    """A finished session's telemetry, frozen at retirement time.

    Session retirement (``TrafficEngine(retire_sessions=True)``) folds a
    terminal :class:`~repro.traffic.workload.SessionRecord` into this
    aggregate and drops its handle graph — the delivery and matched-pair
    lists that grow with traffic.  The summary preserves exactly what
    :func:`build_report` reads per record, so retirement never changes a
    reported number (ordering included: ``fidelities`` keeps the
    per-incarnation match order).
    """

    #: Final request state of the last incarnation.
    status: RequestStatus
    #: CONFIRMED deliveries summed over every incarnation.
    pairs_confirmed: int
    #: Measured pair fidelities, in match order across incarnations.
    fidelities: tuple
    #: Submission time of the last incarnation (ns).
    t_submitted: float
    #: Activation time of the last incarnation (ns; None if never shaped
    #: out of the queue).
    t_started: Optional[float]


@dataclass
class ClassTally:
    """Admission and completion accounting for one priority class."""

    submitted: int = 0
    accepted: int = 0
    queued: int = 0
    rejected: int = 0
    completed: int = 0
    aborted: int = 0
    unfinished: int = 0
    #: Sessions interrupted by a link failure and re-established.
    recovered: int = 0
    #: Sessions whose circuit could not be re-established.
    lost: int = 0
    pairs_confirmed: int = 0
    fidelities: list = field(default_factory=list)


@dataclass
class CircuitStats:
    """One circuit's share of the workload."""

    circuit_id: str
    head: str
    tail: str
    hops: int
    eer: float
    sessions: int
    completed: int
    pairs_confirmed: int
    mean_fidelity: Optional[float]
    #: Mean submission→activation delay of shaped sessions (ns).
    mean_shaping_delay: float


@dataclass
class LinkStats:
    name: str
    utilisation: float
    pairs_generated: int
    attempts_made: int


@dataclass
class ArbiterStats:
    """Device-arbiter queueing at one node (serialised hardware only)."""

    node: str
    grants: int
    mean_wait_ns: float
    max_queue_length: int


@dataclass
class RecoveryStats:
    """Routing and failure-recovery telemetry for one traffic run."""

    #: Path metric the run's circuits were routed with.
    metric: str
    #: Distinct victim links in the executed fault schedule.
    fail_links: int
    #: Link-down events actually executed.
    link_down_events: int
    #: Circuit re-establishments that completed (RESV returned).
    circuits_recovered: int
    #: Circuits declared dead with no surviving path.
    circuits_lost: int
    #: Sessions interrupted by a failure and re-submitted.
    sessions_recovered: int
    #: Sessions aborted (or arriving) on a lost circuit.
    sessions_lost: int
    #: Mean simulated failure-detection → new-RESV latency (ms).
    mean_recovery_ms: Optional[float]
    #: Largest per-link installed LPR share right after installation —
    #: the spread the ``utilisation`` metric minimises.
    max_link_share: float
    #: Route computations the controller performed (install + recovery).
    route_computations: int


@dataclass
class TrafficReport:
    """Structured result of one traffic run."""

    formalism: str
    horizon_ns: float
    elapsed_ns: float
    classes: dict[str, ClassTally]
    circuits: list[CircuitStats]
    links: list[LinkStats]
    arbiters: list[ArbiterStats]
    #: Routing/recovery telemetry (None for reports built without it).
    recovery: Optional[RecoveryStats] = None
    #: Per-circuit application outcomes (:class:`repro.apps.AppOutcome`;
    #: empty for app-less workloads).
    apps: list = field(default_factory=list)
    #: Final metrics-registry frame (``MetricsRegistry.snapshot()``),
    #: captured at build time.  The headline totals below read from it
    #: when present instead of re-deriving from the session records —
    #: the same numbers a streaming snapshot reports (see
    #: :mod:`repro.obs`); ``None`` for reports built without a registry.
    obs: Optional[dict] = None

    # -- scalar telemetry ------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Simulated seconds the workload spanned (horizon + drain)."""
        return self.elapsed_ns / S

    @property
    def total_sessions(self) -> int:
        """All sessions submitted across priority classes."""
        return sum(tally.submitted for tally in self.classes.values())

    def _obs_counter(self, name: str) -> Optional[int]:
        """Registry counter from the attached frame (None when absent)."""
        if self.obs is None:
            return None
        return self.obs.get("counters", {}).get(name)

    @property
    def total_confirmed_pairs(self) -> int:
        """End-to-end pairs confirmed across all sessions.

        Read from the metrics registry when the run carried one (the
        traffic engine streams the same counter to snapshots); derived
        from the per-class tallies otherwise.
        """
        from_registry = self._obs_counter("traffic.pairs_confirmed")
        if from_registry is not None:
            return from_registry
        return sum(tally.pairs_confirmed for tally in self.classes.values())

    @property
    def throughput_pairs_per_s(self) -> float:
        """Confirmed pairs per simulated second."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_confirmed_pairs / self.elapsed_s

    @property
    def sessions_recovered(self) -> int:
        """Sessions re-established after a link failure."""
        return sum(tally.recovered for tally in self.classes.values())

    @property
    def sessions_lost(self) -> int:
        """Sessions lost to an unrecoverable circuit."""
        return sum(tally.lost for tally in self.classes.values())

    @property
    def app_summaries(self) -> dict:
        """Per-app rollup of the outcomes (app name → AppSummary)."""
        return summarise_apps(self.apps)

    @property
    def apps_slo_met(self) -> bool:
        """Whether every app session met its SLO (vacuously True)."""
        return all(outcome.slo.met for outcome in self.apps)

    @property
    def fidelities(self) -> list:
        """All measured pair fidelities, across classes."""
        samples: list = []
        for tally in self.classes.values():
            samples.extend(tally.fidelities)
        return samples

    @property
    def mean_fidelity(self) -> Optional[float]:
        """Mean measured fidelity (None when nothing was measured)."""
        samples = self.fidelities
        return mean(samples) if samples else None

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """Render every table of the report as one text block."""
        blocks = [self._render_totals(), self._render_admission(),
                  self._render_circuits(), self._render_links()]
        if any(stats.grants for stats in self.arbiters):
            blocks.append(self._render_arbiters())
        if self.recovery is not None:
            blocks.append(self._render_recovery())
        if self.apps:
            blocks.append(self._render_apps())
        return "\n\n".join(blocks)

    def _render_totals(self) -> str:
        samples = sorted(self.fidelities)
        lines = [
            f"traffic run — formalism {self.formalism}, "
            f"{len(self.circuits)} circuits, "
            f"{self.total_sessions} sessions in {self.elapsed_s:.2f} s",
            f"  throughput: {self.total_confirmed_pairs} confirmed pairs "
            f"({self.throughput_pairs_per_s:.2f} pairs/s end-to-end)",
        ]
        if samples:
            lines.append(
                f"  fidelity: mean {mean(samples):.4f}, "
                f"min {samples[0]:.4f}, "
                f"p50 {samples[len(samples) // 2]:.4f}, "
                f"max {samples[-1]:.4f}")
        return "\n".join(lines)

    def _render_admission(self) -> str:
        rows = []
        for name, tally in self.classes.items():
            rows.append([name, tally.submitted, tally.accepted, tally.queued,
                         tally.rejected, tally.completed, tally.aborted,
                         tally.unfinished, tally.recovered, tally.lost,
                         tally.pairs_confirmed])
        rows.append(["total",
                     sum(t.submitted for t in self.classes.values()),
                     sum(t.accepted for t in self.classes.values()),
                     sum(t.queued for t in self.classes.values()),
                     sum(t.rejected for t in self.classes.values()),
                     sum(t.completed for t in self.classes.values()),
                     sum(t.aborted for t in self.classes.values()),
                     sum(t.unfinished for t in self.classes.values()),
                     sum(t.recovered for t in self.classes.values()),
                     sum(t.lost for t in self.classes.values()),
                     sum(t.pairs_confirmed for t in self.classes.values())])
        return render_table(
            ["class", "submitted", "accepted", "queued", "rejected",
             "completed", "aborted", "unfinished", "recovered", "lost",
             "pairs"],
            rows, title="admission and completion by priority class")

    def _render_circuits(self) -> str:
        rows = []
        for stats in self.circuits:
            rows.append([
                stats.circuit_id, f"{stats.head}->{stats.tail}", stats.hops,
                stats.sessions, stats.completed, stats.pairs_confirmed,
                ("-" if stats.mean_fidelity is None
                 else f"{stats.mean_fidelity:.4f}"),
                f"{stats.mean_shaping_delay / 1e6:.1f}",
            ])
        return render_table(
            ["circuit", "endpoints", "hops", "sessions", "completed",
             "pairs", "mean F", "shaping (ms)"],
            rows, title="per-circuit telemetry")

    def _render_links(self) -> str:
        rows = [[stats.name, f"{stats.utilisation:.3f}",
                 stats.pairs_generated, stats.attempts_made]
                for stats in self.links]
        return render_table(
            ["link", "utilisation", "pairs", "attempts"],
            rows, title="per-link utilisation")

    def _render_arbiters(self) -> str:
        rows = [[stats.node, stats.grants,
                 f"{stats.mean_wait_ns / 1e3:.2f}", stats.max_queue_length]
                for stats in self.arbiters]
        return render_table(
            ["node", "grants", "mean wait (us)", "max queue"],
            rows, title="device arbiter queueing")

    def _render_recovery(self) -> str:
        stats = self.recovery
        lines = [
            f"routing and recovery — metric {stats.metric}, "
            f"{stats.route_computations} route computations",
            f"  max installed link share: {stats.max_link_share:.2f}",
        ]
        if stats.fail_links or stats.link_down_events:
            lines.append(
                f"  link failures: {stats.link_down_events} down events "
                f"over {stats.fail_links} victim links")
            lines.append(
                f"  circuits: {stats.circuits_recovered} RECOVERED, "
                f"{stats.circuits_lost} LOST")
            lines.append(
                f"  sessions: {stats.sessions_recovered} RECOVERED, "
                f"{stats.sessions_lost} LOST")
            if stats.mean_recovery_ms is not None:
                if stats.mean_recovery_ms >= 1.0:
                    rendered = f"{stats.mean_recovery_ms:.1f} ms"
                else:
                    rendered = f"{stats.mean_recovery_ms * 1e3:.1f} us"
                lines.append(
                    f"  mean re-route time: {rendered} "
                    f"(failure detection -> new RESV)")
        return "\n".join(lines)


    def _render_apps(self) -> str:
        """The application SLO section: per-circuit verdicts + rollup."""
        rows = []
        for outcome in self.apps:
            headline_key = HEADLINE_METRICS.get(outcome.app, "")
            headline = outcome.headline
            failed = "; ".join(check.label()
                               for check in outcome.slo.failed_checks)
            rows.append([
                outcome.circuit_id, outcome.app, outcome.pairs_consumed,
                headline_key or "-",
                "-" if headline is None else f"{headline:.4f}",
                ("met" if outcome.slo.met else f"MISSED ({failed})"),
            ])
        per_circuit = render_table(
            ["circuit", "app", "pairs", "headline metric", "value", "SLO"],
            rows, title="application sessions (per circuit)")
        summary_rows = []
        for name, summary in self.app_summaries.items():
            headline = summary.headline
            summary_rows.append([
                name, summary.circuits, summary.pairs_consumed,
                HEADLINE_METRICS.get(name, "-") or "-",
                "-" if headline is None else f"{headline:.4f}",
                summary.slo_label,
            ])
        rollup = render_table(
            ["app", "circuits", "pairs", "headline metric", "mean value",
             "SLO met"],
            summary_rows, title="application SLOs (per app)")
        return per_circuit + "\n\n" + rollup

    def render_app_details(self) -> str:
        """Long-form per-circuit app metrics (the ``apps --demo`` view)."""
        lines = []
        for outcome in self.apps:
            lines.append(f"{outcome.circuit_id} [{outcome.app}] — "
                         f"{outcome.pairs_consumed} pairs consumed")
            for key, value in sorted(outcome.metrics.items()):
                lines.append(f"    {key}: {value:g}" if isinstance(
                    value, (int, float)) else f"    {key}: {value}")
            for check in outcome.slo.checks:
                lines.append(f"    SLO {check.label()}")
        return "\n".join(lines)


def record_handles(record: "SessionRecord") -> list:
    """All incarnations of a session's request handle, oldest first.

    Recovery replaces a session's handle when it is re-submitted on the
    replacement circuit; delivery accounting must span every
    incarnation.  Empty for retired records (their handles are gone —
    read the :class:`RetiredSummary` instead).
    """
    if getattr(record, "handle", None) is None:
        return []
    return list(getattr(record, "prior_handles", ())) + [record.handle]


def record_status(record: "SessionRecord") -> RequestStatus:
    """A session's final request state (summary-aware)."""
    summary = getattr(record, "summary", None)
    if summary is not None:
        return summary.status
    return record.handle.status


def record_confirmed(record: "SessionRecord") -> int:
    """CONFIRMED deliveries across all incarnations (summary-aware)."""
    summary = getattr(record, "summary", None)
    if summary is not None:
        return summary.pairs_confirmed
    return sum(1 for handle in record_handles(record)
               for delivery in handle.delivered
               if delivery.status == DeliveryStatus.CONFIRMED)


def record_fidelities(record: "SessionRecord") -> list:
    """Measured fidelities across all incarnations, in match order."""
    summary = getattr(record, "summary", None)
    if summary is not None:
        return list(summary.fidelities)
    return [pair.fidelity for handle in record_handles(record)
            for pair in getattr(handle, "matched_pairs", [])
            if pair.fidelity is not None]


def record_shaping(record: "SessionRecord") -> Optional[float]:
    """Submission→activation delay (ns), or None if never activated."""
    summary = getattr(record, "summary", None)
    if summary is not None:
        if summary.t_started is None:
            return None
        return summary.t_started - summary.t_submitted
    if record.handle.t_started is None:
        return None
    return record.handle.t_started - record.handle.t_submitted


def build_report(net: "Network", circuits: Sequence["TrafficCircuit"],
                 records: Sequence["SessionRecord"], horizon_ns: float,
                 elapsed_ns: Optional[float] = None,
                 classes: Sequence = (),
                 recovery: Optional[RecoveryStats] = None,
                 apps: Sequence = (),
                 obs: Optional["MetricsRegistry"] = None) -> TrafficReport:
    """Aggregate a finished run into a :class:`TrafficReport`.

    ``elapsed_ns`` is the wall of simulated time the workload actually
    spanned (horizon + drain); defaults to the simulator clock.
    ``recovery`` attaches the routing/failure telemetry the traffic
    engine collected; ``apps`` the finalised per-circuit application
    outcomes.  ``obs`` is the run's metrics registry; when given, its
    final frame is attached so the report's headline totals come from
    the same counters the streaming snapshots carry.
    """
    if elapsed_ns is None:
        elapsed_ns = net.sim.now
    tallies = {cls.name: ClassTally() for cls in classes}
    # Group sessions by circuit *index*: recovery renames a circuit's ID
    # mid-run, but the index is stable across incarnations.
    per_circuit_records: dict[int, list] = {
        circuit.index: [] for circuit in circuits}

    for record in records:
        tally = tallies.setdefault(record.spec.priority.name, ClassTally())
        tally.submitted += 1
        if record.decision == "accepted":
            tally.accepted += 1
        elif record.decision == "queued":
            tally.queued += 1
        elif record.decision == "rejected":
            tally.rejected += 1
        # decision "lost": arrival on an unrecoverable circuit — counted
        # below through the outcome, not as an admission decision.
        outcome = getattr(record, "outcome", "")
        if outcome == "recovered":
            tally.recovered += 1
        elif outcome == "lost":
            tally.lost += 1
        status = record_status(record)
        if status == RequestStatus.COMPLETED:
            tally.completed += 1
        elif status == RequestStatus.ABORTED:
            tally.aborted += 1
        elif status != RequestStatus.REJECTED:
            tally.unfinished += 1
        tally.pairs_confirmed += record_confirmed(record)
        tally.fidelities.extend(record_fidelities(record))
        per_circuit_records.setdefault(record.spec.circuit_index,
                                       []).append(record)

    circuit_stats = []
    for circuit in circuits:
        circuit_records = per_circuit_records[circuit.index]
        fidelities = [fidelity for record in circuit_records
                      for fidelity in record_fidelities(record)]
        shaping = [delay for record in circuit_records
                   if (delay := record_shaping(record)) is not None]
        circuit_stats.append(CircuitStats(
            circuit_id=circuit.circuit_id,
            head=circuit.head,
            tail=circuit.tail,
            hops=circuit.hops,
            eer=circuit.eer,
            sessions=len(circuit_records),
            completed=sum(1 for record in circuit_records
                          if record_status(record) == RequestStatus.COMPLETED),
            pairs_confirmed=sum(record_confirmed(record)
                                for record in circuit_records),
            mean_fidelity=mean(fidelities) if fidelities else None,
            mean_shaping_delay=mean(shaping) if shaping else 0.0,
        ))

    link_stats = [
        LinkStats(name=link.name,
                  utilisation=(link.busy_time / elapsed_ns
                               if elapsed_ns > 0 else 0.0),
                  pairs_generated=link.pairs_generated,
                  attempts_made=link.attempts_made)
        for _, link in sorted(net.links.items(),
                              key=lambda item: item[1].name)]

    arbiter_stats = [
        ArbiterStats(node=name, grants=node.arbiter.grants,
                     mean_wait_ns=node.arbiter.mean_wait,
                     max_queue_length=node.arbiter.max_queue_length)
        for name, node in sorted(net.nodes.items())]

    return TrafficReport(
        formalism=net.formalism,
        horizon_ns=horizon_ns,
        elapsed_ns=elapsed_ns,
        classes=tallies,
        circuits=circuit_stats,
        links=link_stats,
        arbiters=arbiter_stats,
        recovery=recovery,
        apps=list(apps),
        obs=obs.snapshot() if obs is not None else None,
    )
