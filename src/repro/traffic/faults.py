"""Link-failure injection for traffic workloads.

Outages are materialised up-front as a deterministic schedule of
``down``/``up`` events over the links a workload actually uses, from a
dedicated RNG stream (disjoint from endpoint sampling and session
arrivals, see :func:`repro.traffic.arrivals.stream_seed`), so a faulted
run stays byte-for-byte reproducible in its seed.

Two failure models:

* **scheduled** (``mtbf_s=None``) — each victim link fails exactly once,
  staggered across the first half of the horizon so recovery has time to
  play out, and is repaired ``mttr_s`` later;
* **Poisson** (``mtbf_s`` set) — each victim link alternates between up
  periods drawn from an exponential with mean ``mtbf_s`` and fixed
  ``mttr_s`` repair times, the classic availability model.

The :class:`~repro.traffic.workload.TrafficEngine` arms the schedule on
the simulator and reacts to the resulting liveness failures with
:meth:`repro.network.builder.Network.recover_circuit`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..netsim.units import S
from .arrivals import stream_seed

#: Stream index of the fault RNG (endpoint sampling uses -1, arrivals >= 0).
FAULT_STREAM = -2

#: Fraction of the horizon over which scheduled outages are staggered.
_FIRST_OUTAGE_AT = 0.25
_LAST_OUTAGE_AT = 0.65


@dataclass(frozen=True)
class FaultEvent:
    """One link state change: the link named by ``edge`` goes down or up."""

    at_ns: float
    kind: str  # "down" | "up"
    edge: tuple[str, str]


def fault_schedule(edges: Sequence[tuple[str, str]], horizon_ns: float, *,
                   fail_links: int, mtbf_s: Optional[float] = None,
                   mttr_s: Optional[float] = None,
                   seed: int = 0) -> list[FaultEvent]:
    """Materialise a deterministic outage schedule.

    ``edges`` is the candidate victim pool (typically the links carrying
    installed circuits); ``fail_links`` victims are drawn from it with
    the seeded fault stream.  ``mttr_s`` defaults to a quarter of the
    horizon.  Returns the merged schedule sorted by time.
    """
    if fail_links < 0:
        raise ValueError("fail_links cannot be negative")
    if mtbf_s is not None and mtbf_s <= 0:
        raise ValueError("mtbf must be positive")
    if mttr_s is not None and mttr_s <= 0:
        raise ValueError("mttr must be positive")
    if fail_links == 0 or not edges or horizon_ns <= 0:
        return []
    rng = random.Random(stream_seed(seed, FAULT_STREAM))
    pool = sorted(tuple(sorted(edge)) for edge in set(map(frozenset, edges)))
    victims = rng.sample(pool, min(fail_links, len(pool)))
    mttr_ns = (0.25 * horizon_ns if mttr_s is None else mttr_s * S)
    events: list[FaultEvent] = []
    for index, edge in enumerate(victims):
        if mtbf_s is None:
            fraction = _FIRST_OUTAGE_AT
            if len(victims) > 1:
                fraction += ((_LAST_OUTAGE_AT - _FIRST_OUTAGE_AT)
                             * index / (len(victims) - 1))
            _append_outage(events, edge, horizon_ns * fraction, mttr_ns,
                           horizon_ns)
        else:
            t = rng.expovariate(1.0 / (mtbf_s * S))
            while t < horizon_ns:
                _append_outage(events, edge, t, mttr_ns, horizon_ns)
                t += mttr_ns + rng.expovariate(1.0 / (mtbf_s * S))
    events.sort(key=lambda event: (event.at_ns, event.kind, event.edge))
    return events


def _append_outage(events: list[FaultEvent], edge: tuple[str, str],
                   down_ns: float, mttr_ns: float,
                   horizon_ns: float) -> None:
    """Append one down event and, if it lands inside the run, its repair."""
    events.append(FaultEvent(at_ns=down_ns, kind="down", edge=edge))
    up_ns = down_ns + mttr_ns
    if up_ns < horizon_ns:
        events.append(FaultEvent(at_ns=up_ns, kind="up", edge=edge))
