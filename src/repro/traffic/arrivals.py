"""Stochastic session workloads: Poisson arrivals and priority classes.

A *session* is one application-level request for end-to-end pairs on one
circuit: it arrives at a Poisson instant, asks for a sampled number of
pairs and — except for best-effort traffic — carries a deadline that
translates into a minimum EER demand (``UserRequest.minimum_eer``), which
is what the head-end policer admits, shapes or rejects against.

The schedule is materialised up-front from a dedicated RNG: given the
same seed, class mix and load, the workload is byte-for-byte identical
regardless of what the simulation itself does, which keeps traffic runs
reproducible and lets the engine simply post one timer per session.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class PriorityClass:
    """One class of service in the workload mix.

    ``eer_fraction`` is the share of the circuit's maximum EER a session
    demands (through its deadline): the policer ACCEPTs while fractions
    sum below 1, QUEUEs the overflow, and REJECTs any class whose
    fraction alone exceeds 1.  A fraction of 0 means best-effort — no
    deadline, zero minimum EER, always admitted.
    """

    name: str
    #: Relative probability that a session belongs to this class.
    share: float
    #: Mean pairs per session (sampled geometrically, minimum 1).
    mean_pairs: float
    #: Fraction of the circuit's max EER one session demands (0 = none).
    eer_fraction: float

    def __post_init__(self):
        if self.share <= 0:
            raise ValueError("class share must be positive")
        if self.mean_pairs < 1:
            raise ValueError("mean_pairs must be at least 1")
        if self.eer_fraction < 0:
            raise ValueError("eer_fraction cannot be negative")


#: Default three-class mix: premium sessions that hog half the circuit,
#: standard sessions at a quarter, and best-effort filler.
DEFAULT_CLASSES = (
    PriorityClass("gold", share=0.2, mean_pairs=6.0, eer_fraction=0.5),
    PriorityClass("silver", share=0.3, mean_pairs=4.0, eer_fraction=0.25),
    PriorityClass("best-effort", share=0.5, mean_pairs=3.0, eer_fraction=0.0),
)


def stream_seed(seed: int, index: int) -> int:
    """A distinct, deterministic RNG seed per (workload seed, stream)."""
    return seed * 1_000_003 + index + 1


@dataclass(frozen=True)
class SessionSpec:
    """One scheduled session: when, where, what."""

    circuit_index: int
    arrival_ns: float
    priority: PriorityClass
    num_pairs: int


def sample_exponential(rng: random.Random, mean: float) -> float:
    """One exponential inter-arrival gap with the given mean."""
    return rng.expovariate(1.0 / mean)


def sample_geometric(rng: random.Random, mean: float) -> int:
    """A geometric session size with the given mean, minimum 1."""
    if mean <= 1.0:
        return 1
    # Geometric on {1, 2, ...} with success probability 1/mean.
    p = 1.0 / mean
    return 1 + int(math.log(1.0 - rng.random()) / math.log(1.0 - p))


def pick_class(rng: random.Random,
               classes: Sequence[PriorityClass]) -> PriorityClass:
    """Sample a priority class proportionally to the shares."""
    total = sum(cls.share for cls in classes)
    point = rng.random() * total
    for cls in classes:
        point -= cls.share
        if point < 0:
            return cls
    return classes[-1]


def poisson_schedule(num_circuits: int, horizon_ns: float,
                     mean_interarrival_ns: float | Sequence[float],
                     classes: Sequence[PriorityClass] = DEFAULT_CLASSES,
                     seed: int = 0,
                     max_sessions: Optional[int] = None) -> list[SessionSpec]:
    """Materialise the full workload: independent Poisson streams per
    circuit, merged and sorted by arrival time.

    ``mean_interarrival_ns`` applies per circuit — a scalar for a uniform
    workload or one value per circuit (circuits have different capacities,
    so calibrating offered load needs per-circuit rates).  ``max_sessions``
    caps the merged schedule (earliest sessions win) to bound very long
    horizons.
    """
    if num_circuits < 1:
        raise ValueError("need at least one circuit")
    if horizon_ns <= 0:
        raise ValueError("horizon must be positive")
    if isinstance(mean_interarrival_ns, (int, float)):
        means = [float(mean_interarrival_ns)] * num_circuits
    else:
        means = [float(mean) for mean in mean_interarrival_ns]
        if len(means) != num_circuits:
            raise ValueError("need one mean inter-arrival per circuit")
    if any(mean <= 0 for mean in means):
        raise ValueError("mean inter-arrival must be positive")
    if not classes:
        raise ValueError("need at least one priority class")
    sessions: list[SessionSpec] = []
    for circuit_index, circuit_mean in enumerate(means):
        # One independent, seed-stable stream per circuit.
        rng = random.Random(stream_seed(seed, circuit_index))
        t = sample_exponential(rng, circuit_mean)
        while t < horizon_ns:
            cls = pick_class(rng, classes)
            sessions.append(SessionSpec(
                circuit_index=circuit_index,
                arrival_ns=t,
                priority=cls,
                num_pairs=sample_geometric(rng, cls.mean_pairs),
            ))
            t += sample_exponential(rng, circuit_mean)
    sessions.sort(key=lambda spec: (spec.arrival_ns, spec.circuit_index))
    if max_sessions is not None:
        sessions = sessions[:max_sessions]
    return sessions
