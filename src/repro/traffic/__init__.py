"""Traffic engine: topology catalogue + concurrent-workload subsystem.

This package turns the single-circuit reproduction into a traffic
testbed: seeded topology families (:mod:`~repro.traffic.topologies`),
stochastic multi-class session workloads (:mod:`~repro.traffic.arrivals`,
:mod:`~repro.traffic.workload`) and structured telemetry
(:mod:`~repro.traffic.metrics`).  Entry points::

    from repro.traffic import build_topology, TrafficEngine

    net = build_topology("grid", 4, seed=1, formalism="bell")
    report = TrafficEngine(net, circuits=8, load=0.7).run(horizon_s=5.0)
    print(report.render())

or, from the command line, ``python -m repro traffic --topology grid
--size 4 --circuits 8 --load 0.7``.
"""

from .arrivals import (
    DEFAULT_CLASSES,
    PriorityClass,
    SessionSpec,
    poisson_schedule,
)
from .metrics import TrafficReport, build_report
from .topologies import TOPOLOGIES, build_topology, topology_graph
from .workload import SessionRecord, TrafficCircuit, TrafficEngine, run_traffic

__all__ = [
    "DEFAULT_CLASSES",
    "PriorityClass",
    "SessionSpec",
    "SessionRecord",
    "TOPOLOGIES",
    "TrafficCircuit",
    "TrafficEngine",
    "TrafficReport",
    "build_report",
    "build_topology",
    "poisson_schedule",
    "run_traffic",
    "topology_graph",
]
