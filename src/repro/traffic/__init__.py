"""Traffic engine: topology catalogue + concurrent-workload subsystem.

This package turns the single-circuit reproduction into a traffic
testbed: seeded topology families (:mod:`~repro.traffic.topologies`),
stochastic multi-class session workloads (:mod:`~repro.traffic.arrivals`,
:mod:`~repro.traffic.workload`), deterministic link-failure injection
with circuit recovery (:mod:`~repro.traffic.faults`) and structured
telemetry (:mod:`~repro.traffic.metrics`).  Entry points::

    from repro.traffic import build_topology, TrafficEngine

    net = build_topology("grid", 4, seed=1, formalism="bell")
    report = TrafficEngine(net, circuits=8, load=0.7).run(horizon_s=5.0)
    print(report.render())

or, from the command line, ``python -m repro traffic --topology grid
--size 4 --circuits 8 --load 0.7``.
"""

from .arrivals import (
    DEFAULT_CLASSES,
    PriorityClass,
    SessionSpec,
    poisson_schedule,
)
from .faults import FaultEvent, fault_schedule
from .metrics import RecoveryStats, TrafficReport, build_report
from .topologies import TOPOLOGIES, build_topology, topology_graph
from .workload import SessionRecord, TrafficCircuit, TrafficEngine, run_traffic

__all__ = [
    "DEFAULT_CLASSES",
    "FaultEvent",
    "PriorityClass",
    "RecoveryStats",
    "SessionSpec",
    "SessionRecord",
    "TOPOLOGIES",
    "TrafficCircuit",
    "TrafficEngine",
    "TrafficReport",
    "build_report",
    "build_topology",
    "fault_schedule",
    "poisson_schedule",
    "run_traffic",
    "topology_graph",
]
