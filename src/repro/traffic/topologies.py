"""Topology catalogue: seeded generators for evaluation networks.

The paper evaluates the QNP on hand-built chains and the Fig 7 dumbbell;
routing and benchmarking studies of quantum networks sweep much richer
shapes — grids and random graphs (Shi & Qian, arXiv:1909.09329), Waxman
graphs (the classic internet-topology model) and trees.  This module
generates those families as :mod:`networkx` graphs and wires them into
full :class:`~repro.network.builder.Network` stacks through
:func:`~repro.network.builder.build_network_from_graph`.

Every generator is deterministic in ``(size, seed)``; random families
(Erdős–Rényi, Waxman) are post-processed into a single connected
component so every endpoint pair is routable.

The ``TOPOLOGIES`` registry maps catalogue names (the CLI's
``--topology`` choices) to ``(size, seed) -> nx.Graph`` builders.
"""

from __future__ import annotations

import math
import random
from typing import Callable

import networkx as nx

from ..hardware.parameters import HardwareParams, SIMULATION
from ..network.builder import Network, build_network_from_graph


def grid_graph(size: int, seed: int = 0) -> nx.Graph:
    """A ``size × size`` square lattice (nodes ``g<row>x<col>``)."""
    if size < 2:
        raise ValueError("a grid needs size >= 2")
    graph = nx.Graph()
    for row in range(size):
        for col in range(size):
            name = f"g{row}x{col}"
            graph.add_node(name)
            if row > 0:
                graph.add_edge(f"g{row - 1}x{col}", name)
            if col > 0:
                graph.add_edge(f"g{row}x{col - 1}", name)
    return graph


def ring_graph(size: int, seed: int = 0) -> nx.Graph:
    """A cycle of ``size`` nodes (nodes ``r<i>``)."""
    if size < 3:
        raise ValueError("a ring needs size >= 3")
    graph = nx.Graph()
    names = [f"r{i}" for i in range(size)]
    for left, right in zip(names, names[1:] + names[:1]):
        graph.add_edge(left, right)
    return graph


def star_of_chains_graph(size: int, seed: int = 0,
                         arm_length: int = 2) -> nx.Graph:
    """``size`` repeater chains of ``arm_length`` hops meeting at a hub.

    Models a metropolitan exchange: end-nodes at the arm tips, repeaters
    along the arms, one shared switching hub (nodes ``hub`` and
    ``a<arm>n<depth>``).
    """
    if size < 2:
        raise ValueError("a star needs at least two arms")
    if arm_length < 1:
        raise ValueError("arms need at least one hop")
    graph = nx.Graph()
    for arm in range(size):
        previous = "hub"
        for depth in range(arm_length):
            name = f"a{arm}n{depth}"
            graph.add_edge(previous, name)
            previous = name
    return graph


def erdos_renyi_graph(size: int, seed: int = 0,
                      p: float | None = None) -> nx.Graph:
    """A G(n, p) random graph, forced connected (nodes ``n<i>``).

    ``p`` defaults to ``2 ln(n) / n`` — comfortably above the
    connectivity threshold — and any residual components are stitched
    together with seeded extra edges.
    """
    if size < 2:
        raise ValueError("an Erdős–Rényi graph needs size >= 2")
    if p is None:
        p = min(1.0, 2.0 * math.log(max(size, 2)) / size)
    graph = nx.gnp_random_graph(size, p, seed=seed)
    graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in range(size)})
    return _ensure_connected(graph, random.Random(seed))


def waxman_graph(size: int, seed: int = 0, beta: float = 0.6,
                 alpha: float = 0.4) -> nx.Graph:
    """A Waxman spatial random graph, forced connected (nodes ``w<i>``)."""
    if size < 2:
        raise ValueError("a Waxman graph needs size >= 2")
    graph = nx.waxman_graph(size, beta=beta, alpha=alpha, seed=seed)
    for node in graph.nodes:
        graph.nodes[node].clear()  # drop positions: str names are the identity
    graph = nx.relabel_nodes(graph, {i: f"w{i}" for i in range(size)})
    return _ensure_connected(graph, random.Random(seed))


def tree_graph(size: int, seed: int = 0, branching: int = 2) -> nx.Graph:
    """A balanced tree of height ``size`` (nodes ``t<i>``)."""
    if size < 1:
        raise ValueError("a tree needs height >= 1")
    graph = nx.balanced_tree(branching, size)
    return nx.relabel_nodes(graph,
                            {i: f"t{i}" for i in range(graph.number_of_nodes())})


def _ensure_connected(graph: nx.Graph, rng: random.Random) -> nx.Graph:
    """Stitch components together with deterministic extra edges."""
    components = sorted((sorted(component) for component
                         in nx.connected_components(graph)),
                        key=lambda component: component[0])
    for previous, current in zip(components, components[1:]):
        graph.add_edge(rng.choice(previous), rng.choice(current))
    return graph


#: Catalogue name → seeded graph builder (the CLI's ``--topology`` choices).
TOPOLOGIES: dict[str, Callable[..., nx.Graph]] = {
    "grid": grid_graph,
    "ring": ring_graph,
    "star": star_of_chains_graph,
    "erdos-renyi": erdos_renyi_graph,
    "waxman": waxman_graph,
    "tree": tree_graph,
}


def topology_graph(kind: str, size: int, seed: int = 0, **kwargs) -> nx.Graph:
    """Generate a catalogue topology as a graph."""
    try:
        builder = TOPOLOGIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology {kind!r} (have: {', '.join(sorted(TOPOLOGIES))})"
        ) from None
    return builder(size, seed=seed, **kwargs)


def build_topology(kind: str, size: int, seed: int = 0,
                   params: HardwareParams = SIMULATION,
                   formalism: str = "dm", length_km: float = 0.002,
                   slice_attempts: int = 100,
                   physical: str = "analytic", **kwargs) -> Network:
    """Generate a catalogue topology and wire it into a full network."""
    graph = topology_graph(kind, size, seed=seed, **kwargs)
    return build_network_from_graph(graph, length_km=length_km, params=params,
                                    seed=seed, slice_attempts=slice_attempts,
                                    formalism=formalism, physical=physical)
