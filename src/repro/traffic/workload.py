"""The concurrent-workload engine: many circuits, stochastic sessions.

``TrafficEngine`` drives a wired :class:`~repro.network.builder.Network`
the way a population of applications would:

1. **circuit installation** — sample endpoint pairs from the topology
   (bounded hop distance so the fidelity budget stays feasible) and
   establish one virtual circuit per pair through the normal
   routing/signalling path;
2. **workload** — materialise a Poisson session schedule per circuit
   (:func:`repro.traffic.arrivals.poisson_schedule`), calibrated so the
   offered pair rate is ``load`` × the circuit's admitted EER, and submit
   each session through :meth:`Network.submit` when its arrival timer
   fires — the head-end policer's ACCEPT / QUEUE / REJECT decision is
   recorded and respected (queued sessions simply wait their turn;
   rejected ones are never retried);
3. **faults + recovery** (optional) — a deterministic outage schedule
   (:mod:`repro.traffic.faults`) takes links down mid-run; the circuits'
   liveness keepalives detect the loss of connectivity and the engine
   re-establishes each dead circuit over a surviving path
   (:meth:`~repro.network.builder.Network.recover_circuit`),
   re-submitting its interrupted sessions (``RECOVERED``) or — when no
   path survives — accounting them as ``LOST``;
4. **drain + teardown** — after the horizon, give in-flight sessions a
   bounded grace period, then tear every circuit down (aborting whatever
   is still queued) and aggregate telemetry into a
   :class:`~repro.traffic.metrics.TrafficReport`.

Everything is deterministic in ``(network seed, engine seed)``: endpoint
sampling, the session schedule, the fault schedule and the simulation
itself each draw from their own seeded stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Optional, Sequence

import networkx as nx

from ..analysis.stats import mean
from ..analysis.tracing import attach_tracer
from ..apps import AppContext, get_app
from ..control.routing import PATH_METRICS, RouteError
from ..core.requests import (
    DeliveryStatus,
    RequestHandle,
    RequestStatus,
    UserRequest,
)
from ..netsim.units import S
from ..network.builder import Network
from ..obs.snapshots import SnapshotEmitter
from .arrivals import (
    DEFAULT_CLASSES,
    PriorityClass,
    SessionSpec,
    poisson_schedule,
    stream_seed,
)
from .faults import FaultEvent, fault_schedule
from .metrics import (
    RecoveryStats,
    RetiredSummary,
    TrafficReport,
    build_report,
    record_handles,
)

#: Request states a session cannot leave (retirement eligibility).
_TERMINAL = (RequestStatus.COMPLETED, RequestStatus.REJECTED,
             RequestStatus.ABORTED)


@dataclass
class TrafficCircuit:
    """One installed circuit of the workload.

    ``circuit_id``, ``path``, ``hops`` and ``eer`` track the *current*
    incarnation: recovery re-signals a failed circuit over a new path and
    updates them in place.
    """

    index: int
    circuit_id: str
    head: str
    tail: str
    hops: int
    #: Admitted end-to-end rate (the policer's budget), pairs/s.
    eer: float
    #: Node path of the current incarnation.
    path: list[str] = field(default_factory=list)
    #: Times this circuit was re-established after a failure.
    recoveries: int = 0
    #: True once no surviving path exists; arrivals are counted LOST.
    lost: bool = False
    #: Application service consuming this circuit's deliveries ("" = none).
    app: str = ""


@dataclass
class SessionRecord:
    """One submitted session and its admission outcome."""

    spec: SessionSpec
    circuit_id: str
    handle: RequestHandle
    #: Initial policer decision: "accepted", "queued" or "rejected"
    #: ("lost" for arrivals on a circuit that is already gone).
    decision: str
    #: Failure outcome: "" (untouched), "recovered" or "lost".
    outcome: str = ""
    #: Handles of earlier incarnations (before circuit recovery).
    prior_handles: list = field(default_factory=list)
    #: Set by session retirement: the record's telemetry folded into a
    #: slim aggregate, after which ``handle``/``prior_handles`` are
    #: dropped (reports read the summary instead — same numbers).
    summary: Optional[RetiredSummary] = None


class TrafficEngine:
    """Drive a network with many concurrent circuits and sessions."""

    def __init__(self, net: Network, *, circuits: int = 8, load: float = 0.7,
                 target_fidelity: float = 0.7, cutoff_policy: str = "short",
                 classes: Sequence[PriorityClass] = DEFAULT_CLASSES,
                 seed: Optional[int] = None, min_hops: int = 1,
                 max_hops: int = 4,
                 endpoint_pairs: Optional[Sequence[tuple[str, str]]] = None,
                 max_sessions: int = 2000, metric: str = "hops",
                 fail_links: int = 0, mtbf_s: Optional[float] = None,
                 mttr_s: Optional[float] = None,
                 watch_interval_ms: float = 20.0, miss_limit: int = 3,
                 apps: Optional[Sequence[str]] = None,
                 metrics_out: Optional[str] = None,
                 snapshot_interval_s: float = 0.5,
                 trace_out: Optional[str] = None,
                 checkpoint_out: Optional[str] = None,
                 checkpoint_interval_s: float = 1.0,
                 retire_sessions: bool = False,
                 retire_interval_s: float = 1.0):
        """``metric`` picks the routing metric for every circuit;
        ``fail_links``/``mtbf_s``/``mttr_s`` configure the outage model of
        :func:`repro.traffic.faults.fault_schedule`;
        ``watch_interval_ms``/``miss_limit`` tune how fast the liveness
        keepalive declares a circuit dead; ``apps`` assigns application
        services (:mod:`repro.apps`) to circuits round-robin — every
        delivered pair then flows into the circuit's app consumer and the
        report gains a per-app SLO section.

        Observability: ``metrics_out`` streams the network's metrics
        registry to that JSONL path every ``snapshot_interval_s``
        simulated seconds (:class:`repro.obs.SnapshotEmitter`);
        ``trace_out`` attaches a causal :class:`repro.obs.SpanTracer`
        (unless the network already carries one) and writes the span
        tree there after the run.

        Durability: ``checkpoint_out`` makes the engine write a full
        simulation checkpoint (:mod:`repro.persist`) to that path every
        ``checkpoint_interval_s`` simulated seconds — atomically, so a
        killed run can resume from the last durable checkpoint via
        :func:`repro.persist.load_checkpoint` + :meth:`resume_run`.
        ``retire_sessions`` bounds the engine's memory on long
        horizons: finished sessions are folded into slim
        :class:`~repro.traffic.metrics.RetiredSummary` aggregates every
        ``retire_interval_s`` simulated seconds and their handle graphs
        (delivery and matched-pair lists) freed, without changing any
        reported number."""
        if circuits < 1:
            raise ValueError("need at least one circuit")
        if load <= 0:
            raise ValueError("load must be positive")
        if metric not in PATH_METRICS:
            raise ValueError(f"unknown path metric {metric!r} "
                             f"(have: {', '.join(PATH_METRICS)})")
        if fail_links < 0:
            raise ValueError("fail_links cannot be negative")
        if fail_links == 0 and (mtbf_s is not None or mttr_s is not None):
            raise ValueError(
                "mtbf_s/mttr_s configure the outage model and need "
                "fail_links > 0 — without victims they would be "
                "silently ignored")
        if mtbf_s is not None and mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if mttr_s is not None and mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        if apps is not None:
            if not apps:
                raise ValueError("apps cannot be an empty list "
                                 "(omit it for an app-less workload)")
            for app in apps:
                get_app(app)  # raises a vocabulary-naming ValueError
        if snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be positive")
        if checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive")
        if retire_interval_s <= 0:
            raise ValueError("retire_interval_s must be positive")
        self.net = net
        self.num_circuits = circuits
        self.load = load
        self.target_fidelity = target_fidelity
        self.cutoff_policy = cutoff_policy
        self.classes = tuple(classes)
        self.seed = net.sim.seed if seed is None else seed
        self.min_hops = min_hops
        self.max_hops = max_hops
        self.endpoint_pairs = (None if endpoint_pairs is None
                               else list(endpoint_pairs))
        self.max_sessions = max_sessions
        self.metric = metric
        self.fail_links = fail_links
        self.mtbf_s = mtbf_s
        self.mttr_s = mttr_s
        self.watch_interval_ms = watch_interval_ms
        self.miss_limit = miss_limit
        self.apps = None if apps is None else tuple(apps)
        self.metrics_out = metrics_out
        self.snapshot_interval_s = snapshot_interval_s
        self.trace_out = trace_out
        self.checkpoint_out = checkpoint_out
        self.checkpoint_interval_s = checkpoint_interval_s
        self.retire_sessions = retire_sessions
        self.retire_interval_s = retire_interval_s
        #: Checkpoints written so far (this process; resets on resume).
        self.checkpoints_written = 0
        #: Sessions folded into summaries by ``retire_sessions``.
        self.sessions_retired = 0
        #: Test hook, called as ``on_checkpoint(engine, sim_now_ns)``
        #: after each durable write; dropped from checkpoints.
        self.on_checkpoint: Optional[Callable] = None
        #: The run's snapshot emitter (None without ``metrics_out``).
        self.emitter: Optional[SnapshotEmitter] = None
        # Session counters are pushed at the same points the session
        # records are written, so the final snapshot frame matches the
        # report's admission tallies exactly.  Registering them up front
        # makes the series present (at zero) from the first snapshot.
        obs = net.obs
        self._c_submitted = obs.counter("traffic.sessions_submitted")
        self._c_decision = {
            "accepted": obs.counter("traffic.sessions_accepted"),
            "queued": obs.counter("traffic.sessions_queued"),
            "rejected": obs.counter("traffic.sessions_rejected"),
            "lost": obs.counter("traffic.sessions_lost"),
        }
        self._c_pairs = obs.counter("traffic.pairs_confirmed")
        self._h_latency = obs.histogram("traffic.pair_latency_ms")
        # Bound methods (not lambdas): the registry rides along in engine
        # checkpoints, and both sources stay correct for retired records.
        obs.gauge("traffic.sessions_active",
                  source=self._src_sessions_active)
        obs.counter("traffic.sessions_completed",
                    source=self._src_sessions_completed)
        #: Circuit index → live app service instance (populated on install).
        self._app_services: dict[int, object] = {}
        self._app_outcomes = None
        self._elapsed_ns = 0.0
        self.circuits: list[TrafficCircuit] = []
        self.records: list[SessionRecord] = []
        self.fault_events: list[FaultEvent] = []
        #: Largest installed LPR share right after circuit installation.
        self.max_link_share = 0.0
        self.link_down_count = 0
        self.circuits_recovered = 0
        self.circuits_lost = 0
        self._recovery_times_ns: list[float] = []
        self._by_circuit_id: dict[str, TrafficCircuit] = {}
        self._ran = False
        # Run-phase state: every wait happens inside a phase-tagged
        # simulator run with *absolute* resume points, so a checkpoint
        # taken mid-phase can re-enter exactly where it left off.
        self._phase: Optional[str] = None
        self._start_ns = 0.0
        self._horizon_ns = 0.0
        self._drain_s = 0.0
        self._drain_handles: list[RequestHandle] = []
        self._drain_deadline_ns = 0.0
        self._ckpt_handle = None
        self._retire_handle = None
        # Indices of records not yet retired, and those seen terminal on
        # the previous sweep (retirement is two-phase: a session must
        # stay terminal for a full interval so late tail-delivery
        # matches have landed before its telemetry is frozen).
        self._retire_pending: list[int] = []
        self._retire_ready: set[int] = set()
        # Endpoint stream (-1) is disjoint from the per-circuit arrival
        # streams (indices >= 0) and the fault stream (-2).
        self._rng = random.Random(stream_seed(self.seed, -1))

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["on_checkpoint"] = None
        return state

    def _src_sessions_active(self) -> int:
        """Gauge source: sessions currently ACTIVE or QUEUED."""
        return sum(1 for record in self.records
                   if record.summary is None
                   and record.handle.status in (RequestStatus.ACTIVE,
                                                RequestStatus.QUEUED))

    def _src_sessions_completed(self) -> int:
        """Counter source: sessions that reached COMPLETED."""
        count = 0
        for record in self.records:
            if record.summary is not None:
                if record.summary.status == RequestStatus.COMPLETED:
                    count += 1
            elif record.handle.status == RequestStatus.COMPLETED:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Circuit installation
    # ------------------------------------------------------------------

    def install(self) -> list[TrafficCircuit]:
        """Sample endpoints and establish the workload's circuits.

        Sampling is **node-centric**: each circuit draws a head node
        uniformly among not-yet-used nodes, then a tail uniformly among
        its in-range partners — uniform over *users* rather than over the
        pair list (which over-weights nodes with many in-range partners),
        and node-disjoint while fresh nodes last.  A circuit whose
        endpoint is shared with an installed circuit would force both
        onto the few links incident to that node, which no path metric
        can route around; once the fresh pool runs out, endpoints (and,
        for explicit ``endpoint_pairs``, whole pairs) are reused.

        With ``apps``, each circuit's app is fixed by its index (round
        robin) *before* routing, and the app's fidelity demand
        (:attr:`repro.apps.AppService.min_fidelity`) raises that
        circuit's target — application SLOs drive what is asked of the
        network, not just how its output is scored.
        """
        if self.circuits:
            return self.circuits
        supplier = (self._explicit_pairs() if self.endpoint_pairs is not None
                    else self._sampled_pairs())
        while len(self.circuits) < self.num_circuits:
            app = ("" if self.apps is None
                   else self.apps[len(self.circuits) % len(self.apps)])
            target = self.target_fidelity
            if app:
                target = max(target, get_app(app).min_fidelity)
            try:
                head, tail = next(supplier)
            except StopIteration:
                raise RuntimeError(
                    f"could only establish {len(self.circuits)} of "
                    f"{self.num_circuits} circuits at fidelity "
                    f"{target}") from None
            try:
                circuit_id = self.net.establish_circuit(
                    head, tail, target, self.cutoff_policy,
                    metric=self.metric)
            except RouteError:
                continue
            route = self.net.route_of(circuit_id)
            circuit = TrafficCircuit(
                index=len(self.circuits), circuit_id=circuit_id,
                head=head, tail=tail, hops=route.num_links, eer=route.eer,
                path=list(route.path), app=app)
            self.circuits.append(circuit)
            self._by_circuit_id[circuit_id] = circuit
        if self.net.controller is not None:
            self.max_link_share = self.net.controller.max_link_share()
        if self.apps is not None:
            self._assign_apps()
        return self.circuits

    def _assign_apps(self) -> None:
        """Instantiate each circuit's app service (apps were fixed at
        installation time, where their fidelity demands shaped routing).

        Each instance gets its own RNG stream (disjoint from the
        workload's endpoint (−1) and fault (−2) streams and the
        per-circuit arrival streams ≥ 0), so app-side randomness —
        BBM92 basis choices, twirl draws — is deterministic in the
        engine seed alone.
        """
        for circuit in self.circuits:
            route = self.net.route_of(circuit.circuit_id)
            ctx = AppContext(
                circuit_index=circuit.index,
                circuit_id=circuit.circuit_id,
                head=circuit.head,
                tail=circuit.tail,
                head_device=self.net.node(circuit.head).device,
                tail_device=self.net.node(circuit.tail).device,
                rng=random.Random(stream_seed(self.seed,
                                              -3 - circuit.index)),
                estimated_fidelity=route.estimated_fidelity,
                target_fidelity=route.target_fidelity,
            )
            self._app_services[circuit.index] = get_app(circuit.app)(ctx)

    def app_outcomes(self) -> list:
        """Finalised per-circuit app outcomes (empty without ``apps``).

        Valid once :meth:`run` finished; ordered by circuit index and
        computed exactly once (finalising tears down app-held state).
        """
        if self._app_outcomes is None:
            elapsed_s = self._elapsed_ns / S
            self._app_outcomes = [
                self._app_services[index].finalise(elapsed_s)
                for index in sorted(self._app_services)]
            obs = self.net.obs
            for outcome in self._app_outcomes:
                obs.counter("apps.pairs_consumed").inc(
                    outcome.pairs_consumed)
                obs.counter("apps.slo_met" if outcome.slo.met
                            else "apps.slo_missed").inc()
        return self._app_outcomes

    def _explicit_pairs(self):
        """Yield caller-provided endpoint pairs, shuffled, with reuse.

        Pairs are reused across passes once the pool runs out (several
        circuits between the same endpoints is a valid workload, cf. the
        paper's Fig 8 sharing study); a full pass that established no
        circuit means every remaining candidate fails routing.
        """
        order = list(self.endpoint_pairs)
        self._rng.shuffle(order)
        while True:
            before = len(self.circuits)
            for head, tail in order:
                if self._rng.random() < 0.5:
                    head, tail = tail, head
                yield head, tail
            if len(self.circuits) == before:
                return

    def _sampled_pairs(self):
        """Yield node-centric sampled endpoint pairs at bounded distance."""
        graph = self.net.graph
        nodes = sorted(graph.nodes)
        # Bound each BFS at max_hops: nodes beyond the cutoff are simply
        # absent from the inner maps (and were never candidates anyway).
        lengths = dict(nx.all_pairs_shortest_path_length(
            graph, cutoff=self.max_hops))

        def partners(head: str, used: set) -> list[str]:
            return [b for b in nodes
                    if b != head and b not in used
                    and self.min_hops <= lengths[head].get(
                        b, self.max_hops + 1) <= self.max_hops]

        if not any(partners(node, set()) for node in nodes):
            raise ValueError(
                f"no endpoint pairs at hop distance "
                f"[{self.min_hops}, {self.max_hops}] in this topology")
        used: set[str] = set()
        for _ in range(200 * self.num_circuits):
            fresh = [node for node in nodes if node not in used]
            head = self._rng.choice(fresh or nodes)
            mates = partners(head, used) or partners(head, set())
            if not mates:
                continue
            tail = self._rng.choice(mates)
            used.update((head, tail))
            yield head, tail

    # ------------------------------------------------------------------
    # Workload execution
    # ------------------------------------------------------------------

    def run(self, horizon_s: float = 5.0,
            drain_s: Optional[float] = None) -> TrafficReport:
        """Run the workload for ``horizon_s`` simulated seconds.

        ``drain_s`` bounds the post-horizon grace period for in-flight
        sessions (default: one more horizon).  Returns the telemetry
        report; circuits are torn down before it is built.  An engine is
        one-shot — build a fresh one (on a fresh network) per run.
        """
        if self._ran:
            raise RuntimeError(
                "this engine already ran (its circuits are torn down); "
                "build a fresh TrafficEngine on a fresh network")
        self._ran = True
        self._begin_run(horizon_s, drain_s)
        return self._run_phases()

    def resume_run(self) -> TrafficReport:
        """Continue a checkpointed run to completion.

        The counterpart of :func:`repro.persist.load_checkpoint`: the
        restored engine re-enters the phase (horizon or drain) it was
        checkpointed in — all waiting happens against absolute simulated
        deadlines saved with the engine, so the continued run processes
        exactly the events an uninterrupted run would have.
        """
        if self._phase is None:
            raise RuntimeError("engine never ran — call run() instead")
        if self._phase == "done":
            raise RuntimeError("this run already finished; nothing to resume")
        return self._run_phases()

    def _begin_run(self, horizon_s: float, drain_s: Optional[float]) -> None:
        """Install circuits and arm everything the run needs (phase 0)."""
        if self.trace_out is not None and self.net.tracer is None:
            attach_tracer(self.net)
        self.install()
        sim = self.net.sim
        self._phase = "horizon"
        self._start_ns = sim.now
        self._horizon_ns = horizon_s * S
        self._drain_s = horizon_s if drain_s is None else drain_s
        if self.metrics_out is not None:
            self.emitter = SnapshotEmitter(
                sim, self.net.obs, self.metrics_out,
                interval_s=self.snapshot_interval_s,
                meta={"seed": self.seed, "formalism": self.net.formalism,
                      "circuits": len(self.circuits),
                      "horizon_s": horizon_s})
            self.emitter.start()
        if self.fail_links > 0:
            self._arm_faults(self._start_ns, self._horizon_ns)
        schedule = poisson_schedule(
            len(self.circuits), self._horizon_ns,
            [self._mean_interarrival_ns(circuit) for circuit in self.circuits],
            classes=self.classes, seed=self.seed,
            max_sessions=self.max_sessions)
        for spec in schedule:
            sim.schedule_at(self._start_ns + spec.arrival_ns,
                            self._submit, spec)
        if self.retire_sessions:
            self._arm_retire()
        if self.checkpoint_out is not None:
            self._arm_checkpoint()

    def _run_phases(self) -> TrafficReport:
        """Drive the run through its remaining phases (idempotent entry).

        Fresh runs enter with phase ``horizon``; resumed runs enter with
        whatever phase the checkpoint was taken in.  Completed phases are
        skipped — the simulator clock is never run backwards.
        """
        sim = self.net.sim
        if self._phase == "horizon":
            self.net.run(until_s=(self._start_ns + self._horizon_ns) / S)
            self._drain_handles = [
                record.handle for record in self.records
                if record.summary is None
                and record.handle.status in (RequestStatus.ACTIVE,
                                             RequestStatus.QUEUED)]
            self._drain_deadline_ns = sim.now + self._drain_s * S
            self._phase = "drain"
        if self._phase == "drain":
            if self._drain_s > 0 and self._drain_handles:
                self.net.run_until_complete(
                    self._drain_handles,
                    deadline_s=self._drain_deadline_ns / S)
            self._phase = "finish"
        return self._finish_run()

    def _finish_run(self) -> TrafficReport:
        """Tear down, finalise observability, and build the report."""
        sim = self.net.sim
        if self._ckpt_handle is not None:
            self._ckpt_handle.cancel()
            self._ckpt_handle = None
        if self._retire_handle is not None:
            self._retire_handle.cancel()
            self._retire_handle = None
        elapsed_ns = sim.now - self._start_ns
        self._elapsed_ns = elapsed_ns
        for circuit in self.circuits:
            self.net.teardown_circuit(circuit.circuit_id)
        # Let the TEAR messages propagate so every node along every path
        # drops its circuit state (the grace is excluded from telemetry).
        self.net.run(until_s=(sim.now + 0.01 * S) / S)
        # App outcomes push their SLO counters; finalise *after* them so
        # the last snapshot frame carries the exact end-of-run registry —
        # the report below reads its headline totals from the same frame.
        outcomes = self.app_outcomes()
        if self.trace_out is not None:
            self.net.tracer.write_jsonl(self.trace_out)
        if self.emitter is not None:
            self.emitter.finalise()
        self._phase = "done"
        return build_report(self.net, self.circuits, self.records,
                            horizon_ns=self._horizon_ns,
                            elapsed_ns=elapsed_ns,
                            classes=self.classes,
                            recovery=self._recovery_stats(),
                            apps=outcomes,
                            obs=self.net.obs)

    # ------------------------------------------------------------------
    # Durable checkpoints and session retirement
    # ------------------------------------------------------------------

    def _arm_checkpoint(self) -> None:
        """Schedule the next periodic checkpoint write."""
        self._ckpt_handle = self.net.sim.schedule(
            self.checkpoint_interval_s * S, self._write_checkpoint)

    def _write_checkpoint(self) -> None:
        """Write one durable checkpoint (re-arming first, so the saved
        event heap already carries the *next* checkpoint event — a
        resumed run keeps checkpointing on the same interval grid)."""
        from ..persist import save_checkpoint

        self._arm_checkpoint()
        save_checkpoint(self, self.checkpoint_out)
        self.checkpoints_written += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(self, self.net.sim.now)

    def _arm_retire(self) -> None:
        """Schedule the next session-retirement sweep."""
        self._retire_handle = self.net.sim.schedule(
            self.retire_interval_s * S, self._retire_tick)

    def _retire_tick(self) -> None:
        self._arm_retire()
        self._sweep_retirable()

    def _sweep_retirable(self) -> None:
        """Fold sessions terminal for a full interval into summaries.

        Two-phase: a record seen retirable on sweep N is retired on
        sweep N+1.  The interval between sightings dwarfs the classical
        message delays, so any in-flight tail delivery whose match would
        still extend the record's fidelity list has landed before the
        telemetry is frozen — retirement cannot change a reported
        number.
        """
        still: list[int] = []
        ready = self._retire_ready
        next_ready: set[int] = set()
        for index in self._retire_pending:
            record = self.records[index]
            if self._retirable(record):
                if index in ready:
                    self._retire(record)
                    continue
                next_ready.add(index)
            still.append(index)
        self._retire_pending = still
        self._retire_ready = next_ready

    def _retirable(self, record: SessionRecord) -> bool:
        """Terminal in every incarnation, with no PENDING deliveries."""
        if record.handle.status not in _TERMINAL:
            return False
        return not any(delivery.status == DeliveryStatus.PENDING
                       for handle in record_handles(record)
                       for delivery in handle.delivered)

    def _retire(self, record: SessionRecord) -> None:
        """Replace a finished record's handle graph with an aggregate."""
        handles = record_handles(record)
        confirmed = sum(1 for handle in handles
                        for delivery in handle.delivered
                        if delivery.status == DeliveryStatus.CONFIRMED)
        fidelities = tuple(
            pair.fidelity for handle in handles
            for pair in getattr(handle, "matched_pairs", [])
            if pair.fidelity is not None)
        record.summary = RetiredSummary(
            status=record.handle.status,
            pairs_confirmed=confirmed,
            fidelities=fidelities,
            t_submitted=record.handle.t_submitted,
            t_started=record.handle.t_started)
        for handle in handles:
            self.net.discard_submission(handle)
        record.handle = None
        record.prior_handles = []
        self.sessions_retired += 1

    # ------------------------------------------------------------------
    # Fault injection and circuit recovery
    # ------------------------------------------------------------------

    def _arm_faults(self, start_ns: float, horizon_ns: float) -> None:
        """Schedule the outage events and start liveness monitoring."""
        used_edges = sorted({(circuit.path[i], circuit.path[i + 1])
                             for circuit in self.circuits
                             for i in range(len(circuit.path) - 1)})
        self.fault_events = fault_schedule(
            used_edges, horizon_ns, fail_links=self.fail_links,
            mtbf_s=self.mtbf_s, mttr_s=self.mttr_s, seed=self.seed)
        for event in self.fault_events:
            self.net.sim.schedule_at(start_ns + event.at_ns,
                                     self._apply_fault, event)
        for circuit in self.circuits:
            self._watch(circuit.circuit_id)

    def _watch(self, circuit_id: str) -> None:
        """Monitor one circuit's keepalive, routing failures to recovery."""
        self.net.watch_circuit(circuit_id,
                               interval_ms=self.watch_interval_ms,
                               miss_limit=self.miss_limit,
                               on_failure=self._on_circuit_failure)

    def _apply_fault(self, event: FaultEvent) -> None:
        """Execute one scheduled link state change."""
        if event.kind == "down":
            self.net.fail_link(*event.edge)
            self.link_down_count += 1
        else:
            self.net.restore_link(*event.edge)

    def _on_circuit_failure(self, circuit_id: str) -> None:
        """Liveness declared a circuit dead: try to re-route it.

        The in-flight sessions are snapshotted *before* the
        management-plane teardown aborts their handles, so the recovery
        callback can re-submit exactly those sessions on the new path.
        """
        circuit = self._by_circuit_id.pop(circuit_id, None)
        if circuit is None:
            return
        t_failed = self.net.sim.now
        inflight = [record for record in self.records
                    if record.summary is None
                    and record.circuit_id == circuit_id
                    and record.handle.status in (RequestStatus.ACTIVE,
                                                 RequestStatus.QUEUED)]
        new_id = self.net.recover_circuit(
            circuit_id,
            on_ready=partial(self._on_circuit_recovered, t_failed))
        if new_id is None:
            circuit.lost = True
            self.circuits_lost += 1
            for record in inflight:
                record.outcome = "lost"
            return
        route = self.net.route_of(new_id)
        circuit.circuit_id = new_id
        circuit.path = list(route.path)
        circuit.hops = route.num_links
        circuit.eer = route.eer
        circuit.recoveries += 1
        self._by_circuit_id[new_id] = circuit
        service = self._app_services.get(circuit.index)
        if service is not None:
            # Keep the app outcome's identity in step with the live
            # incarnation (endpoints — and hence devices — are unchanged).
            service.ctx.circuit_id = new_id
        # Re-watch and re-submit immediately rather than from on_ready:
        # if a second outage kills the replacement path mid-handshake the
        # RESV never arrives, and only the liveness keepalive can notice —
        # it then simply triggers another recovery cycle, which picks the
        # re-submitted sessions up again by their updated circuit ID.
        self._watch(new_id)
        for record in inflight:
            self._resubmit(record, circuit)

    def _on_circuit_recovered(self, t_failed: float,
                              circuit_id: str = "") -> None:
        """The replacement circuit's RESV arrived: recovery completed."""
        self.circuits_recovered += 1
        self._recovery_times_ns.append(self.net.sim.now - t_failed)

    def _resubmit(self, record: SessionRecord, circuit: TrafficCircuit) -> None:
        """Re-submit an interrupted session on its recovered circuit."""
        done = sum(1 for handle in record_handles(record)
                   for delivery in handle.delivered
                   if delivery.status == DeliveryStatus.CONFIRMED)
        remaining = record.spec.num_pairs - done
        record.outcome = "recovered"
        if remaining <= 0:
            return
        cls = record.spec.priority
        deadline_ns = None
        if cls.eer_fraction > 0:
            deadline_ns = remaining / (cls.eer_fraction * circuit.eer) * 1e9
        handle = self.net.submit(
            circuit.circuit_id,
            UserRequest(num_pairs=remaining, deadline=deadline_ns),
            record_fidelity=True,
            on_matched=self._consumer_for(circuit))
        self._count_deliveries(handle)
        record.prior_handles.append(record.handle)
        record.handle = handle
        record.circuit_id = circuit.circuit_id

    def _recovery_stats(self) -> RecoveryStats:
        """Aggregate the run's routing/recovery telemetry."""
        controller = self.net.controller
        return RecoveryStats(
            metric=self.metric,
            fail_links=len({event.edge for event in self.fault_events}),
            link_down_events=self.link_down_count,
            circuits_recovered=self.circuits_recovered,
            circuits_lost=self.circuits_lost,
            sessions_recovered=sum(1 for record in self.records
                                   if record.outcome == "recovered"),
            sessions_lost=sum(1 for record in self.records
                              if record.outcome == "lost"),
            mean_recovery_ms=(mean(self._recovery_times_ns) / 1e6
                              if self._recovery_times_ns else None),
            max_link_share=self.max_link_share,
            route_computations=(controller.route_computations
                                if controller is not None else 0),
        )

    def _count_deliveries(self, handle: RequestHandle) -> None:
        """Stream this handle's confirmed pairs into the registry.

        A delivery is counted on the notification that carries the
        CONFIRMED status — exactly once per pair: KEEP/MEASURE pairs are
        delivered already confirmed, EARLY pairs notify first as PENDING
        and again when the cross-check confirms (or never, when they
        expire).  The counter therefore matches the report's
        ``pairs_confirmed`` tally, which scans the same handles.
        """
        handle.on_delivery(partial(self._counted_delivery, handle))

    def _counted_delivery(self, handle: RequestHandle, delivery) -> None:
        """Delivery listener body (picklable: lives on the handle)."""
        if delivery.status == DeliveryStatus.CONFIRMED:
            self._c_pairs.inc()
            self._h_latency.observe(
                (self.net.sim.now - handle.t_submitted) / 1e6)

    def _consumer_for(self, circuit: TrafficCircuit):
        """The delivery fan-in hook of a circuit's app service (or None).

        Every session on the circuit shares the one service instance, so
        the app sees the circuit's whole delivery stream — sessions are
        the workload's unit, circuits are the application's.
        """
        service = self._app_services.get(circuit.index)
        return None if service is None else service.consume

    def _mean_interarrival_ns(self, circuit: TrafficCircuit) -> float:
        """Inter-arrival time so offered pairs/s ≈ load × circuit EER."""
        mean_pairs = (sum(cls.share * cls.mean_pairs for cls in self.classes)
                      / sum(cls.share for cls in self.classes))
        offered_rate = self.load * max(circuit.eer, 1e-9)
        return mean_pairs / offered_rate * 1e9

    def _submit(self, spec: SessionSpec) -> None:
        """Submit one scheduled session at its circuit's head-end."""
        circuit = self.circuits[spec.circuit_index]
        if circuit.lost:
            # The circuit is gone and not coming back: account the
            # arrival as LOST instead of leaving the session hanging.
            request = UserRequest(num_pairs=spec.num_pairs)
            handle = RequestHandle(request, 0.0)
            handle.t_submitted = self.net.sim.now
            handle.status = RequestStatus.ABORTED
            self._c_submitted.inc()
            self._c_decision["lost"].inc()
            self.records.append(SessionRecord(
                spec=spec, circuit_id=circuit.circuit_id,
                handle=handle, decision="lost", outcome="lost"))
            self._retire_pending.append(len(self.records) - 1)
            return
        cls = spec.priority
        deadline_ns = None
        if cls.eer_fraction > 0:
            # Deadline such that minimum_eer == eer_fraction × circuit EER.
            deadline_ns = spec.num_pairs / (cls.eer_fraction * circuit.eer) * 1e9
        handle = self.net.submit(
            circuit.circuit_id,
            UserRequest(num_pairs=spec.num_pairs, deadline=deadline_ns),
            record_fidelity=True,
            on_matched=self._consumer_for(circuit))
        if handle.status == RequestStatus.REJECTED:
            decision = "rejected"
        elif handle.status == RequestStatus.QUEUED:
            decision = "queued"
        else:
            decision = "accepted"
        self._c_submitted.inc()
        self._c_decision[decision].inc()
        self._count_deliveries(handle)
        self.records.append(SessionRecord(
            spec=spec, circuit_id=circuit.circuit_id,
            handle=handle, decision=decision))
        self._retire_pending.append(len(self.records) - 1)


def run_traffic(net: Network, horizon_s: float = 5.0,
                **engine_kwargs) -> TrafficReport:
    """One-call convenience: build an engine, run it, return the report."""
    return TrafficEngine(net, **engine_kwargs).run(horizon_s=horizon_s)
