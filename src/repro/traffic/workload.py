"""The concurrent-workload engine: many circuits, stochastic sessions.

``TrafficEngine`` drives a wired :class:`~repro.network.builder.Network`
the way a population of applications would:

1. **circuit installation** — sample endpoint pairs from the topology
   (bounded hop distance so the fidelity budget stays feasible) and
   establish one virtual circuit per pair through the normal
   routing/signalling path;
2. **workload** — materialise a Poisson session schedule per circuit
   (:func:`repro.traffic.arrivals.poisson_schedule`), calibrated so the
   offered pair rate is ``load`` × the circuit's admitted EER, and submit
   each session through :meth:`Network.submit` when its arrival timer
   fires — the head-end policer's ACCEPT / QUEUE / REJECT decision is
   recorded and respected (queued sessions simply wait their turn;
   rejected ones are never retried);
3. **drain + teardown** — after the horizon, give in-flight sessions a
   bounded grace period, then tear every circuit down (aborting whatever
   is still queued) and aggregate telemetry into a
   :class:`~repro.traffic.metrics.TrafficReport`.

Everything is deterministic in ``(network seed, engine seed)``: endpoint
sampling, the session schedule and the simulation itself each draw from
their own seeded stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx

from ..control.routing import RouteError
from ..core.requests import RequestHandle, RequestStatus, UserRequest
from ..netsim.units import S
from ..network.builder import Network
from .arrivals import (
    DEFAULT_CLASSES,
    PriorityClass,
    SessionSpec,
    poisson_schedule,
    stream_seed,
)
from .metrics import TrafficReport, build_report


@dataclass
class TrafficCircuit:
    """One installed circuit of the workload."""

    index: int
    circuit_id: str
    head: str
    tail: str
    hops: int
    #: Admitted end-to-end rate (the policer's budget), pairs/s.
    eer: float


@dataclass
class SessionRecord:
    """One submitted session and its admission outcome."""

    spec: SessionSpec
    circuit_id: str
    handle: RequestHandle
    #: Initial policer decision: "accepted", "queued" or "rejected".
    decision: str


class TrafficEngine:
    """Drive a network with many concurrent circuits and sessions."""

    def __init__(self, net: Network, *, circuits: int = 8, load: float = 0.7,
                 target_fidelity: float = 0.7, cutoff_policy: str = "short",
                 classes: Sequence[PriorityClass] = DEFAULT_CLASSES,
                 seed: Optional[int] = None, min_hops: int = 1,
                 max_hops: int = 4,
                 endpoint_pairs: Optional[Sequence[tuple[str, str]]] = None,
                 max_sessions: int = 2000):
        if circuits < 1:
            raise ValueError("need at least one circuit")
        if load <= 0:
            raise ValueError("load must be positive")
        self.net = net
        self.num_circuits = circuits
        self.load = load
        self.target_fidelity = target_fidelity
        self.cutoff_policy = cutoff_policy
        self.classes = tuple(classes)
        self.seed = net.sim.seed if seed is None else seed
        self.min_hops = min_hops
        self.max_hops = max_hops
        self.endpoint_pairs = (None if endpoint_pairs is None
                               else list(endpoint_pairs))
        self.max_sessions = max_sessions
        self.circuits: list[TrafficCircuit] = []
        self.records: list[SessionRecord] = []
        self._ran = False
        # Endpoint stream (-1) is disjoint from the per-circuit arrival
        # streams, which use stream indices >= 0.
        self._rng = random.Random(stream_seed(self.seed, -1))

    # ------------------------------------------------------------------
    # Circuit installation
    # ------------------------------------------------------------------

    def install(self) -> list[TrafficCircuit]:
        """Sample endpoints and establish the workload's circuits."""
        if self.circuits:
            return self.circuits
        candidates = (self.endpoint_pairs if self.endpoint_pairs is not None
                      else self._candidate_pairs())
        if not candidates:
            raise ValueError(
                f"no endpoint pairs at hop distance "
                f"[{self.min_hops}, {self.max_hops}] in this topology")
        order = list(candidates)
        self._rng.shuffle(order)
        cursor = 0
        established_this_pass = 0
        while len(self.circuits) < self.num_circuits:
            if cursor >= len(order):
                # Reuse endpoint pairs once the pool runs out (several
                # circuits between the same endpoints is a valid workload,
                # cf. the paper's Fig 8 sharing study).  Only a pass that
                # established nothing means we are stuck: every remaining
                # candidate fails routing at this fidelity.
                if established_this_pass == 0:
                    raise RuntimeError(
                        f"could only establish {len(self.circuits)} of "
                        f"{self.num_circuits} circuits at fidelity "
                        f"{self.target_fidelity}")
                cursor = 0
                established_this_pass = 0
            head, tail = order[cursor]
            cursor += 1
            if self._rng.random() < 0.5:
                head, tail = tail, head
            try:
                circuit_id = self.net.establish_circuit(
                    head, tail, self.target_fidelity, self.cutoff_policy)
            except RouteError:
                continue
            route = self.net.route_of(circuit_id)
            self.circuits.append(TrafficCircuit(
                index=len(self.circuits), circuit_id=circuit_id,
                head=head, tail=tail, hops=route.num_links, eer=route.eer))
            established_this_pass += 1
        return self.circuits

    def _candidate_pairs(self) -> list[tuple[str, str]]:
        graph = self.net.graph
        nodes = sorted(graph.nodes)
        # Bound each BFS at max_hops: nodes beyond the cutoff are simply
        # absent from the inner maps (and were never candidates anyway).
        lengths = dict(nx.all_pairs_shortest_path_length(
            graph, cutoff=self.max_hops))
        return [(a, b)
                for i, a in enumerate(nodes) for b in nodes[i + 1:]
                if self.min_hops <= lengths[a].get(b, self.max_hops + 1)
                <= self.max_hops]

    # ------------------------------------------------------------------
    # Workload execution
    # ------------------------------------------------------------------

    def run(self, horizon_s: float = 5.0,
            drain_s: Optional[float] = None) -> TrafficReport:
        """Run the workload for ``horizon_s`` simulated seconds.

        ``drain_s`` bounds the post-horizon grace period for in-flight
        sessions (default: one more horizon).  Returns the telemetry
        report; circuits are torn down before it is built.  An engine is
        one-shot — build a fresh one (on a fresh network) per run.
        """
        if self._ran:
            raise RuntimeError(
                "this engine already ran (its circuits are torn down); "
                "build a fresh TrafficEngine on a fresh network")
        self._ran = True
        self.install()
        sim = self.net.sim
        start_ns = sim.now
        horizon_ns = horizon_s * S
        schedule = poisson_schedule(
            len(self.circuits), horizon_ns,
            [self._mean_interarrival_ns(circuit) for circuit in self.circuits],
            classes=self.classes, seed=self.seed,
            max_sessions=self.max_sessions)
        for spec in schedule:
            sim.schedule_at(start_ns + spec.arrival_ns, self._submit, spec)
        self.net.run(until_s=(start_ns + horizon_ns) / S)
        drain = horizon_s if drain_s is None else drain_s
        outstanding = [record.handle for record in self.records
                       if record.handle.status in (RequestStatus.ACTIVE,
                                                   RequestStatus.QUEUED)]
        if drain > 0 and outstanding:
            self.net.run_until_complete(outstanding, timeout_s=drain)
        elapsed_ns = sim.now - start_ns
        for circuit in self.circuits:
            self.net.teardown_circuit(circuit.circuit_id)
        # Let the TEAR messages propagate so every node along every path
        # drops its circuit state (the grace is excluded from telemetry).
        self.net.run(until_s=(sim.now + 0.01 * S) / S)
        return build_report(self.net, self.circuits, self.records,
                            horizon_ns=horizon_ns,
                            elapsed_ns=elapsed_ns,
                            classes=self.classes)

    def _mean_interarrival_ns(self, circuit: TrafficCircuit) -> float:
        """Inter-arrival time so offered pairs/s ≈ load × circuit EER."""
        mean_pairs = (sum(cls.share * cls.mean_pairs for cls in self.classes)
                      / sum(cls.share for cls in self.classes))
        offered_rate = self.load * max(circuit.eer, 1e-9)
        return mean_pairs / offered_rate * 1e9

    def _submit(self, spec: SessionSpec) -> None:
        circuit = self.circuits[spec.circuit_index]
        cls = spec.priority
        deadline_ns = None
        if cls.eer_fraction > 0:
            # Deadline such that minimum_eer == eer_fraction × circuit EER.
            deadline_ns = spec.num_pairs / (cls.eer_fraction * circuit.eer) * 1e9
        handle = self.net.submit(
            circuit.circuit_id,
            UserRequest(num_pairs=spec.num_pairs, deadline=deadline_ns),
            record_fidelity=True)
        if handle.status == RequestStatus.REJECTED:
            decision = "rejected"
        elif handle.status == RequestStatus.QUEUED:
            decision = "queued"
        else:
            decision = "accepted"
        self.records.append(SessionRecord(
            spec=spec, circuit_id=circuit.circuit_id,
            handle=handle, decision=decision))


def run_traffic(net: Network, horizon_s: float = 5.0,
                **engine_kwargs) -> TrafficReport:
    """One-call convenience: build an engine, run it, return the report."""
    return TrafficEngine(net, **engine_kwargs).run(horizon_s=horizon_s)
