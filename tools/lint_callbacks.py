#!/usr/bin/env python
"""Lint: wiring must go through repro.netsim.ports, not callback attributes.

The component-and-port layer made inter-component wiring explicit: every
connection is a pair of typed ports joined by ``connect()``.  The old
style — reaching into another object and assigning a callback attribute
(``end._receiver = cb``) or calling one of the deprecated shim methods —
bypasses protocol validation and hides the wiring again, so this lint
bans it in ``src/repro`` (tests may still exercise the shims; they double
as back-compat coverage).

Rules, enforced by AST walk:

1. no assignment of a callback-ish attribute (``handler``, ``callback``,
   ``receiver`` and underscore variants) on any object other than
   ``self`` — storing *your own* constructor argument is fine, wiring
   someone else's inbox is not;
2. no calls to the deprecated shim methods ``register_handler`` /
   ``attach_channel``.

``repro/netsim/ports.py`` is exempt (the one place allowed to touch
``Port.handler``), as is ``repro/netsim/scheduler.py``, whose pooled
``EventHandle.callback`` slots are the event payloads of the kernel
below the port layer, not inter-component wiring.

Usage::

    python tools/lint_callbacks.py [src/repro]
"""

from __future__ import annotations

import ast
import pathlib
import sys

BANNED_ATTRS = frozenset({
    "handler", "_handler", "handlers", "_handlers",
    "callback", "_callback", "receiver", "_receiver",
})
BANNED_CALLS = frozenset({"register_handler", "attach_channel"})
ALLOWED_FILES = frozenset({"netsim/ports.py", "netsim/scheduler.py"})


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def check_file(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    rel = path.relative_to(root).as_posix()
    if rel in ALLOWED_FILES:
        return []
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []

    def report(node: ast.AST, message: str) -> None:
        problems.append(f"{path}:{node.lineno}: {message}")

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr in BANNED_ATTRS
                        and not _is_self(target.value)):
                    report(node,
                           f"direct callback-attribute assignment "
                           f"'.{target.attr} = ...' — wire through "
                           f"repro.netsim.ports.connect() instead")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in BANNED_CALLS:
                report(node,
                       f"call to deprecated shim '.{func.attr}()' — wire "
                       f"through repro.netsim.ports.connect() instead")
    return problems


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1] if len(argv) > 1 else "src/repro")
    if not root.is_dir():
        print(f"lint_callbacks: no such directory: {root}", file=sys.stderr)
        return 2
    problems = []
    for path in sorted(root.rglob("*.py")):
        problems.extend(check_file(path, root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"lint_callbacks: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_callbacks: OK ({root})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
