#!/usr/bin/env python3
"""A miniature of the Sec 5.1 congestion study on the dumbbell network.

Issues the same workload (requests for pairs on A0-B0) while the bottleneck
link MA–MB carries one, two, or four competing circuits, and prints how the
request latency scales — including the "quantum congestion collapse" when
four circuits fight over two memory qubits per link end, and its relief
under a shorter cutoff (Fig 8c vs 8f).

Run:  python examples/congestion_study.py   (takes a minute or two)
"""

from repro import UserRequest, build_dumbbell_network
from repro.analysis import render_table

CIRCUITS = {
    1: [("A0", "B0")],
    2: [("A0", "B0"), ("A1", "B1")],
    4: [("A0", "B0"), ("A1", "B1"), ("A0", "B1"), ("A1", "B0")],
}


def scenario(num_circuits: int, cutoff_policy: str, pairs: int = 8,
             seed: int = 1) -> float:
    """Mean latency (ms) of one request per circuit, issued simultaneously."""
    net = build_dumbbell_network(seed=seed)
    circuit_ids = [net.establish_circuit(a, b, 0.8, cutoff_policy)
                   for a, b in CIRCUITS[num_circuits]]
    handles = [net.submit(cid, UserRequest(num_pairs=pairs))
               for cid in circuit_ids]
    net.run_until_complete(handles, timeout_s=900)
    observed = [h.latency / 1e6 for h in handles if h.latency is not None]
    return sum(observed) / len(observed) if observed else float("nan")


def main() -> None:
    rows = []
    for num_circuits in (1, 2, 4):
        row = [num_circuits]
        for policy in ("loss", "short"):
            row.append(round(scenario(num_circuits, policy), 1))
        rows.append(row)
    print(render_table(
        ["circuits on bottleneck", "latency, long cutoff (ms)",
         "latency, short cutoff (ms)"],
        rows,
        title="Mean request latency vs bottleneck sharing (8 pairs/request)"))
    print()
    print("Expect: latency grows with circuit count; with the long cutoff")
    print("and 4 circuits the two memory qubits per link end clog with")
    print("unmatched pairs (Fig 8c); the short cutoff clears them (Fig 8f).")


if __name__ == "__main__":
    main()
