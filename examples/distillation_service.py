#!/usr/bin/env python3
"""Entanglement distillation as a layered service (Sec 4.3).

An inner QNP circuit delivers pairs between two end-points; a distillation
module consumes them two at a time (DEJMPS) and produces fewer,
higher-fidelity pairs — the building block the paper proposes for
overcoming the fundamental fidelity loss of long swap chains.

The example compares the ground-truth fidelity of the raw QNP pairs with
the distilled ones and with the DEJMPS closed-form prediction.

Run:  python examples/distillation_service.py
"""

from repro import UserRequest, build_chain_network
from repro.analysis import mean
from repro.quantum import pair_fidelity
from repro.services import DistillationModule, theoretical_dejmps_fidelity


def main() -> None:
    net = build_chain_network(num_nodes=3, seed=13)
    circuit_id = net.establish_circuit("node0", "node2", target_fidelity=0.8)
    handle = net.submit(circuit_id, UserRequest(num_pairs=48),
                        record_fidelity=False)
    net.run_until_complete([handle], timeout_s=600)

    # Pair up confirmed deliveries from both ends.  Two nested DEJMPS
    # levels: single-click pairs carry a bit/bit-phase error mix for which
    # one round is neutral — the second round does the purifying.
    tail_by_pair = {d.pair_id: d for d in handle.tail_deliveries}
    module = DistillationModule(net.sim.rng, levels=2)
    raw_fidelities = []
    for head_delivery in handle.delivered:
        tail_delivery = tail_by_pair.get(head_delivery.pair_id)
        if tail_delivery is None or head_delivery.qubit is None:
            continue
        raw_fidelities.append(pair_fidelity(
            head_delivery.qubit, tail_delivery.qubit,
            int(head_delivery.bell_state)))
        module.absorb(head_delivery.qubit, tail_delivery.qubit,
                      head_delivery.bell_state)

    distilled_fidelities = [pair_fidelity(keep_a, keep_b, 0)
                            for keep_a, keep_b in module.distilled]

    raw_mean = mean(raw_fidelities)
    print("Layered distillation service over a 3-node circuit\n")
    print(f"raw QNP pairs        : {len(raw_fidelities)}  "
          f"mean fidelity {raw_mean:.4f}")
    print(f"DEJMPS rounds        : {module.rounds_attempted} "
          f"(success rate {module.success_rate:.2f})")
    if distilled_fidelities:
        print(f"2-level distilled    : {len(distilled_fidelities)}  "
              f"mean fidelity {mean(distilled_fidelities):.4f}")
    print(f"Werner 1-round theory: {theoretical_dejmps_fidelity(raw_mean):.4f}")
    print("\nDistillation trades rate for fidelity: four raw pairs (plus")
    print("failures) buy one pair purer than the swap chain can deliver —")
    print("the building-block service of Sec 4.3.")


if __name__ == "__main__":
    main()
