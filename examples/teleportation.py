#!/usr/bin/env python3
"""Quantum teleportation over QNP-delivered pairs ("create and keep").

The create-and-keep use case of Sec 3.1: the application asks for pairs in
a definite Bell state (final_state=Φ+, so the head-end applies the Pauli
correction from the tracking information) and then teleports data qubits
from the head-end to the tail-end through them.

The example prepares random single-qubit states, teleports each through a
delivered pair, and verifies the received state against the original using
the simulation's ground truth.

Run:  python examples/teleportation.py
"""

import numpy as np

from repro import UserRequest, build_chain_network
from repro.core import DeliveryStatus
from repro.quantum import BellIndex, QState, Qubit, ry, teleport


def random_state_qubit(rng) -> tuple[Qubit, np.ndarray]:
    """A fresh qubit in a random meridian state, plus its ideal vector."""
    theta = rng.random() * np.pi
    qubit = Qubit("data")
    state = QState.ground(qubit)
    rotation = ry(theta)
    state.apply_unitary(rotation, [qubit])
    ideal = rotation @ np.array([1.0, 0.0], dtype=complex)
    return qubit, ideal


def main() -> None:
    net = build_chain_network(num_nodes=3, seed=11)
    circuit_id = net.establish_circuit("node0", "node2", target_fidelity=0.85)
    handle = net.submit(circuit_id,
                        UserRequest(num_pairs=5, final_state=BellIndex.PHI_PLUS))
    net.run_until_complete([handle], timeout_s=180)

    head_pairs = {d.pair_id: d for d in handle.delivered
                  if d.status == DeliveryStatus.CONFIRMED}
    tail_pairs = {d.pair_id: d for d in handle.tail_deliveries
                  if d.status == DeliveryStatus.CONFIRMED}

    rng = net.sim.rng
    print("Teleporting random qubits node0 → node2 through delivered pairs\n")
    print(f"{'pair':>4}  {'reported state':>14}  {'teleport fidelity':>17}")
    for pair_id, head_delivery in head_pairs.items():
        tail_delivery = tail_pairs.get(pair_id)
        if tail_delivery is None:
            continue
        data_qubit, ideal = random_state_qubit(rng)
        received = teleport(data_qubit, head_delivery.qubit,
                            tail_delivery.qubit, rng)
        dm = received.state.reduced_dm([received])
        fidelity = float(np.real(ideal.conj() @ dm @ ideal))
        print(f"{head_delivery.sequence:>4}  "
              f"{str(head_delivery.bell_state):>14}  {fidelity:>17.4f}")

    print("\nAll pairs were Pauli-corrected to Φ+ by the head-end, so the")
    print("teleportation correction depends only on the local BSM outcome.")


if __name__ == "__main__":
    main()
