#!/usr/bin/env python3
"""Quickstart: end-to-end entanglement over a three-node repeater chain.

Builds a chain of three quantum nodes (two links, one entanglement-swapping
repeater in the middle), installs a virtual circuit for fidelity ≥ 0.8, and
requests five entangled pairs.  Prints, for every delivered pair, the Bell
state the network reported and the ground-truth fidelity read from the
simulation (something a real network could never do — Sec 4.1).

Run:  python examples/quickstart.py
"""

from repro import UserRequest, build_chain_network


def main() -> None:
    net = build_chain_network(num_nodes=3, seed=42)
    circuit_id = net.establish_circuit("node0", "node2", target_fidelity=0.8)
    route = net.route_of(circuit_id)

    print("Virtual circuit installed")
    print(f"  path            : {' -> '.join(route.path)}")
    print(f"  link fidelity   : {route.link_fidelity:.4f} "
          "(chosen by the routing budget)")
    print(f"  cutoff          : {route.cutoff / 1e6:.2f} ms")
    print(f"  worst-case F    : {route.estimated_fidelity:.4f}")
    print(f"  max LPR         : {route.max_lpr:.0f} pairs/s")
    print()

    handle = net.submit(circuit_id, UserRequest(num_pairs=5),
                        record_fidelity=True)
    net.run_until_complete([handle], timeout_s=120)

    print(f"Request {handle.request_id}: {handle.status.value} "
          f"in {handle.latency / 1e6:.1f} ms")
    print(f"{'pair':>4}  {'Bell state':>10}  {'fidelity':>8}  {'age (ms)':>8}")
    for matched in handle.matched_pairs:
        head = matched.head_delivery
        age_ms = (head.t_delivered - head.t_created) / 1e6
        print(f"{head.sequence:>4}  {str(head.bell_state):>10}  "
              f"{matched.fidelity:>8.4f}  {age_ms:>8.2f}")

    middle = net.qnps["node1"]
    print()
    print(f"Repeater node1 performed {middle.swaps_performed} entanglement "
          f"swaps and discarded {middle.pairs_discarded} decohered pairs.")


if __name__ == "__main__":
    main()
