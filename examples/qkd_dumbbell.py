#!/usr/bin/env python3
"""BBM92 quantum key distribution over the paper's dumbbell network (Fig 7).

Two user pairs (A0↔B0 and A1↔B1) run QKD sessions simultaneously; both
virtual circuits compete for the MA–MB bottleneck link.  The example shows
the "measure directly" use case of Sec 3.1: pairs are consumed immediately
and rate fluctuations are harmless.

Run:  python examples/qkd_dumbbell.py
"""

from repro import build_dumbbell_network
from repro.services import run_bbm92


def main() -> None:
    net = build_dumbbell_network(seed=7)
    circuit_a = net.establish_circuit("A0", "B0", target_fidelity=0.85,
                                      cutoff_policy="short")
    circuit_b = net.establish_circuit("A1", "B1", target_fidelity=0.85,
                                      cutoff_policy="short")

    print("Two QKD circuits share the MA–MB bottleneck link\n")
    for label, circuit_id in (("A0-B0", circuit_a), ("A1-B1", circuit_b)):
        key = run_bbm92(net, circuit_id, num_pairs=80, timeout_s=600)
        print(f"circuit {label}")
        print(f"  rounds measured : {key.total_rounds}")
        print(f"  sifted key bits : {key.sifted_rounds} "
              f"(sift ratio {key.sift_ratio:.2f})")
        print(f"  QBER            : {key.qber:.3f}  "
              f"({'OK' if key.qber < 0.11 else 'ABOVE QKD LIMIT'})")
        print(f"  key preview     : {''.join(map(str, key.key_bits[:32]))}")
        print()

    bottleneck = net.link_between("MA", "MB")
    print(f"Bottleneck link generated {bottleneck.pairs_generated} pairs; "
          f"busy {bottleneck.busy_time / net.sim.now:.0%} of simulated time.")


if __name__ == "__main__":
    main()
