#!/usr/bin/env python3
"""The Fig 11 scenario: the QNP on near-future hardware.

Three nodes, 25 km apart, near-term NV parameters (Tables 1–2's right
column): one communication qubit per node (links take turns), carbon
storage with nuclear dephasing during entanglement attempts, telecom
frequency conversion losses.  As in the paper, the routing tables are
populated manually — link fidelities set as high as the hardware allows and
a hand-tuned cutoff — and we request 10 pairs at the entanglement-witness
threshold F ≥ 0.5.

Run:  python examples/near_future_hardware.py
"""

from repro import UserRequest, build_near_term_chain
from repro.netsim.units import S


def main() -> None:
    net = build_near_term_chain(num_nodes=3, length_km=25.0, seed=3)
    link = net.link_between("node0", "node1")
    alpha = link.model.alpha_for_fidelity(0.8)
    print("Near-term hardware (Fig 11 configuration)")
    print(f"  attempt cycle     : {link.model.cycle_time / 1e3:.1f} µs "
          "(dominated by the 2×12.5 km herald round trip)")
    print(f"  success/attempt   : {link.model.success_probability(alpha):.2e}")
    print(f"  mean link-pair    : {link.model.expected_pair_time(alpha) / 1e9:.2f} s")
    print()

    circuit_id = net.establish_circuit_manual(
        path=["node0", "node1", "node2"],
        link_fidelity=0.8,          # as high as the hardware supports
        cutoff=3.0 * S,             # hand-tuned (Sec 5.3)
        max_eer=5.0,
        estimated_fidelity=0.55,
    )
    handle = net.submit(circuit_id, UserRequest(num_pairs=10),
                        record_fidelity=True)
    net.run_until_complete([handle], timeout_s=600)

    print(f"request status: {handle.status.value}, "
          f"{len(handle.delivered)} pairs delivered")
    print(f"{'pair':>4}  {'arrival (s)':>11}  {'fidelity':>8}")
    for matched in sorted(handle.matched_pairs,
                          key=lambda m: m.head_delivery.t_delivered):
        head = matched.head_delivery
        print(f"{head.sequence:>4}  {head.t_delivered / 1e9:>11.1f}  "
              f"{matched.fidelity:>8.3f}")
    witnesses = sum(1 for m in handle.matched_pairs if m.fidelity > 0.5)
    print(f"\n{witnesses}/{len(handle.matched_pairs)} pairs above the "
          "F=0.5 entanglement witness threshold.")


if __name__ == "__main__":
    main()
