#!/usr/bin/env python3
"""Trace the QNP message sequence of Fig 6 from a live run.

Attaches the event log to every node of a four-node chain (two swapping
repeaters, like the figure), requests two pairs, and renders the observed
protocol sequence: REQUEST → FORWARD cascade → link pairs → SWAPs →
TRACKs in both directions → PAIR deliveries → COMPLETE cascade.

Run:  python examples/sequence_trace.py
"""

from repro import UserRequest, build_chain_network
from repro.analysis import attach_trace


def main() -> None:
    net = build_chain_network(num_nodes=4, seed=5)
    circuit_id = net.establish_circuit("node0", "node3", target_fidelity=0.75)
    log = attach_trace(net)
    handle = net.submit(circuit_id, UserRequest(num_pairs=2))
    net.run_until_complete([handle], timeout_s=300)

    nodes = ["node0", "node1", "node2", "node3"]
    print("Observed QNP sequence (compare with Fig 6 of the paper):\n")
    print(log.render_sequence(nodes, max_events=60))

    print("\nEvent counts:")
    for kind in ("REQUEST", "FORWARD", "LINK_PAIR", "SWAP", "TRACK",
                 "PAIR", "COMPLETE", "EXPIRE", "CUTOFF_DISCARD"):
        count = len(log.of_kind(kind))
        if count:
            print(f"  {kind:<15} {count}")


if __name__ == "__main__":
    main()
